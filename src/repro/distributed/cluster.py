"""A Spark-like mini-batch cluster model — paper §7.6.2.

The paper's distributed experiments run on a 10-node Spark cluster whose
RDD "views" are immutable and must be maintained synchronously in
batches.  Three empirical behaviours drive Figures 14–16:

1. **Batch amortization** — per-batch scheduling/shuffle overheads make
   small batches an order of magnitude slower per record (Fig 14a).
2. **Thread contention with idle absorption** — running a second
   maintenance thread (SVC) halves throughput for small batches, but
   large batches spend a growing fraction of time in synchronous-shuffle
   idle which the second thread absorbs (Fig 14b, Fig 16).
3. **Staleness growth within a period** — bigger batches are more
   efficient but leave views stale longer (Fig 15's trade-off).

:class:`ClusterModel` captures (1) and (2) with a standard
overhead-plus-linear batch-time model whose parameters were set to match
the magnitudes in the paper's figures; the error dynamics of (3) are
*measured* from real SVC runs (``repro.distributed.minibatch``), not
modeled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import WorkloadError

#: Records per GB used to translate the paper's GB-denominated batch
#: sizes into record counts (user-activity log records ≈ 1 KB).
RECORDS_PER_GB = 1_000_000


@dataclass
class ClusterModel:
    """Analytic throughput model of a mini-batch cluster.

    Parameters
    ----------
    peak_rate:
        Asymptotic single-thread processing rate (records/second).
    batch_overhead:
        Fixed per-batch cost in seconds (scheduling + shuffle barriers).
    idle_max:
        Maximum fraction of a (large) batch spent in synchronous-shuffle
        idle that a concurrent thread can absorb.
    idle_half_gb:
        Batch size (GB) at which half of ``idle_max`` is reached.
    """

    peak_rate: float = 1_200_000.0
    batch_overhead: float = 40.0
    idle_max: float = 0.75
    idle_half_gb: float = 30.0

    def batch_records(self, batch_gb: float) -> float:
        """Record count of a batch of the given size in GB."""
        return batch_gb * RECORDS_PER_GB

    def idle_fraction(self, batch_gb: float) -> float:
        """Fraction of batch wall-time spent idle (grows with batch size)."""
        return self.idle_max * batch_gb / (batch_gb + self.idle_half_gb)

    def batch_time(self, batch_gb: float, threads: int = 1) -> float:
        """Wall-clock seconds to process one batch.

        With two maintenance threads, compute time that cannot overlap
        idle phases serializes — small batches are hit ~2×, large ones
        much less (paper Fig 14b).
        """
        if batch_gb <= 0:
            raise WorkloadError(f"batch size must be positive: {batch_gb}")
        records = self.batch_records(batch_gb)
        base = self.batch_overhead + records / self.peak_rate
        if threads <= 1:
            return base
        # Scheduling overheads and non-idle compute both contend; the
        # second thread only rides for free during shuffle-idle windows,
        # whose share grows with batch size.
        contention = 2.0 - self.idle_fraction(batch_gb)
        return contention * base

    def throughput(self, batch_gb: float, threads: int = 1) -> float:
        """Sustained records/second at the given batch size (Fig 14)."""
        return self.batch_records(batch_gb) / self.batch_time(batch_gb, threads)

    def smallest_batch_for(
        self, target_rate: float, threads: int = 1,
        candidates_gb: List[float] = None,
    ) -> float:
        """Smallest batch size (GB) meeting a throughput demand.

        The paper fixes cluster throughput and picks the smallest batch
        that achieves it for IVM alone and for SVC+IVM (§7.6.2).
        """
        if candidates_gb is None:
            candidates_gb = [float(g) for g in range(5, 205, 5)]
        for g in sorted(candidates_gb):
            if self.throughput(g, threads) >= target_rate:
                return g
        raise WorkloadError(
            f"no batch size sustains {target_rate:,.0f} records/s with "
            f"{threads} thread(s); max is "
            f"{max(self.throughput(g, threads) for g in candidates_gb):,.0f}"
        )

    @classmethod
    def from_shard_reports(
        cls, reports, idle_max: float = 0.75, idle_half_gb: float = 30.0,
    ) -> "ClusterModel":
        """Fit ``peak_rate``/``batch_overhead`` from measured shard runs.

        ``reports`` are :class:`~repro.distributed.metrics.ShardRunReport`
        objects (or anything with ``total_rows``/``eval_seconds``) from
        the real sharded executor — i.e. rounds that went through the
        shared-memory transport — at two or more distinct batch sizes.
        A least-squares line ``seconds = overhead + records / peak``
        replaces the default constants, so the Fig 14–16 analyses can
        run against *this* machine's measured behaviour instead of the
        paper cluster's magnitudes.
        """
        points = [
            (float(r.total_rows), float(r.eval_seconds))
            for r in reports
            if r.total_rows > 0 and r.eval_seconds > 0
        ]
        if len({p[0] for p in points}) < 2:
            raise WorkloadError(
                "fitting a cluster model needs measured rounds at two or "
                f"more distinct batch sizes; got {len(points)} usable round(s)"
            )
        records = np.array([p[0] for p in points])
        seconds = np.array([p[1] for p in points])
        slope, overhead = np.polyfit(records, seconds, 1)
        if slope <= 0:
            # Timing noise dominated (tiny batches): fall back to the
            # aggregate rate with no amortizable overhead.
            return cls(peak_rate=float(records.sum() / seconds.sum()),
                       batch_overhead=0.0,
                       idle_max=idle_max, idle_half_gb=idle_half_gb)
        return cls(peak_rate=float(1.0 / slope),
                   batch_overhead=max(float(overhead), 0.0),
                   idle_max=idle_max, idle_half_gb=idle_half_gb)


def throughput_curve(
    model: ClusterModel, batch_sizes_gb: List[float], threads: int = 1
) -> List[dict]:
    """(batch_gb, records/s) series for Fig 14a/14b."""
    return [
        {
            "batch_gb": g,
            "threads": threads,
            "throughput": model.throughput(g, threads),
        }
        for g in batch_sizes_gb
    ]


def cpu_utilization_trace(
    model: ClusterModel, batch_gb: float, seconds: int, with_svc: bool,
    seed: int = 0,
) -> np.ndarray:
    """Per-second CPU utilization samples (Fig 16).

    Periodic IVM alternates compute bursts with shuffle/idle troughs;
    a concurrent SVC thread fills the troughs with sample maintenance.
    """
    rng = np.random.default_rng(seed)
    period = model.batch_time(batch_gb, threads=1)
    idle_frac = model.idle_fraction(batch_gb)
    out = np.empty(seconds)
    for t in range(seconds):
        # Each sample is the state at a uniformly jittered instant within
        # its second.  Integer-second sampling (``t % period``) aliases
        # whenever the period divides a second evenly — in particular any
        # sub-second period pinned every sample to phase 0 and the trace
        # showed no idle windows at all.
        phase = ((t + rng.uniform()) % period) / period
        # Shuffle idle windows recur within the batch; the tail of the
        # period is the inter-batch gap.
        in_idle = (phase % 0.25) > (0.25 * (1.0 - idle_frac))
        if in_idle:
            base = rng.uniform(5, 20)
            if with_svc:
                base += rng.uniform(50, 75)
        else:
            base = rng.uniform(85, 100)
            if with_svc:
                base = min(100.0, base + rng.uniform(0, 5))
        out[t] = min(base, 100.0)
    return out
