"""Tests for the TPCD-Skew generator and the Zipfian sampler."""

import numpy as np
import pytest

from repro.stats.zipf import ZipfGenerator, zipf_values
from repro.workloads.tpcd import ROWS_PER_SF, build_tpcd


class TestZipf:
    def test_domain_respected(self):
        draws = zipf_values(500, 10, 2.0, rng=np.random.default_rng(0))
        assert draws.min() >= 0 and draws.max() < 10

    def test_skew_concentrates_on_low_ranks(self):
        rng = np.random.default_rng(0)
        skewed = ZipfGenerator(100, 3.0, rng).draw(2000)
        uniform = ZipfGenerator(100, 0.0, rng).draw(2000)
        assert (skewed == 0).mean() > (uniform == 0).mean() * 5

    def test_zero_exponent_is_uniform(self):
        gen = ZipfGenerator(4, 0.0)
        assert np.allclose(gen.pmf(), 0.25)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0, 1.0)
        with pytest.raises(ValueError):
            ZipfGenerator(5, -1.0)

    def test_pmf_sums_to_one(self):
        assert ZipfGenerator(50, 2.0).pmf().sum() == pytest.approx(1.0)


class TestGenerator:
    @pytest.fixture(scope="class")
    def db_gen(self):
        return build_tpcd(scale=0.2, z=2.0, seed=1)

    def test_all_tables_present(self, db_gen):
        db, _ = db_gen
        assert set(db.relation_names()) == {
            "region", "nation", "supplier", "customer", "part", "orders",
            "lineitem",
        }

    def test_row_counts_scale(self, db_gen):
        db, _ = db_gen
        for table in ("customer", "orders", "lineitem"):
            expected = int(ROWS_PER_SF[table] * 0.2)
            assert abs(len(db.relation(table)) - expected) <= 1

    def test_primary_keys_valid(self, db_gen):
        db, _ = db_gen
        for name in db.relation_names():
            assert db.relation(name).validate_key(), name

    def test_foreign_keys_resolve(self, db_gen):
        db, _ = db_gen
        orders = db.relation("orders")
        custkeys = db.relation("customer").key_set()
        o_cust = orders.schema.index("o_custkey")
        assert all((r[o_cust],) in custkeys for r in orders.rows)
        lineitem = db.relation("lineitem")
        orderkeys = orders.key_set()
        l_ok = lineitem.schema.index("l_orderkey")
        assert all((r[l_ok],) in orderkeys for r in lineitem.rows)

    def test_prices_are_long_tailed(self):
        db, _ = build_tpcd(scale=0.4, z=4.0, seed=2)
        prices = db.relation("lineitem").column_array("l_extendedprice")
        assert prices.max() / np.median(prices) > 50

    def test_skew_grows_with_z(self):
        low = build_tpcd(scale=0.4, z=1.0, seed=3)[0]
        high = build_tpcd(scale=0.4, z=4.0, seed=3)[0]

        def cv(arr):
            return arr.std() / arr.mean()

        assert cv(high.relation("lineitem").column_array("l_extendedprice")) > cv(
            low.relation("lineitem").column_array("l_extendedprice")
        )

    def test_determinism(self):
        a, _ = build_tpcd(scale=0.2, z=2.0, seed=9)
        b, _ = build_tpcd(scale=0.2, z=2.0, seed=9)
        assert a.relation("lineitem").rows == b.relation("lineitem").rows


class TestUpdates:
    def test_update_batch_counts(self):
        db, gen = build_tpcd(scale=0.3, z=2.0, seed=4)
        report = gen.generate_updates(db, 0.1)
        assert report["lineitem_inserted"] > 0
        assert report["lineitem_updated"] > 0
        assert db.is_stale()

    def test_updates_preserve_foreign_keys(self):
        db, gen = build_tpcd(scale=0.3, z=2.0, seed=4)
        gen.generate_updates(db, 0.1)
        fresh = db.fresh_leaves()
        orderkeys = fresh["orders"].key_set()
        l_ok = fresh["lineitem"].schema.index("l_orderkey")
        assert all((r[l_ok],) in orderkeys for r in fresh["lineitem"].rows)

    def test_fresh_lineitem_keys_unique(self):
        db, gen = build_tpcd(scale=0.3, z=2.0, seed=4)
        gen.generate_updates(db, 0.15)
        assert db.fresh_leaves()["lineitem"].validate_key()

    def test_invalid_fraction(self):
        db, gen = build_tpcd(scale=0.2, z=2.0, seed=4)
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            gen.generate_updates(db, 0.0)
