"""Utilization and timing metrics for the mini-batch experiments and the
sharded maintenance executor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.distributed.cluster import ClusterModel, cpu_utilization_trace
from repro.reliability.telemetry import (
    DemotionEvent,
    FailureEvent,
    FailureReason,
)


@dataclass
class ShardTiming:
    """One shard's contribution to a sharded evaluation."""

    shard: int
    rows: int
    seconds: float
    skipped: bool = False


@dataclass
class TransportStats:
    """How one round's shard inputs crossed the process boundary.

    ``transport`` is ``"shm"`` (shared-memory columnar transport),
    ``"pickle"`` (everything serialized into the task payloads), or
    ``"local"`` (serial/thread execution — nothing crossed a process
    boundary).  ``input_bytes`` counts what was actually shipped this
    round: task-payload pickles plus newly written shared-memory bytes.
    ``shm_resident_bytes`` is the volume *not* shipped because workers
    already hold it — the transport's whole point.  ``pool_rebuilt``
    records a successful broken-pool recovery; ``demoted`` carries the
    reason when the process backend was permanently demoted after
    failing twice in one round.
    """

    transport: str = "local"
    input_bytes: int = 0
    shm_written_bytes: int = 0
    shm_resident_bytes: int = 0
    segments_created: int = 0
    pool_rebuilt: bool = False
    demoted: str = ""


@dataclass
class RoundTelemetry:
    """Mutable accumulator of one round's failure/recovery telemetry.

    The executor appends to it as the round unfolds; the finished,
    immutable view rides on :class:`ShardRunReport` (events as tuples so
    the report stays hashable-field-stable and pickle-safe).
    """

    retries: int = 0
    timeouts: int = 0
    failures: List[FailureEvent] = field(default_factory=list)
    demotions: List[DemotionEvent] = field(default_factory=list)
    recovered: List[int] = field(default_factory=list)

    def record(self, reason: FailureReason, shard: int = -1,
               attempt: int = 0, detail: str = "") -> None:
        self.failures.append(
            FailureEvent(reason=reason, shard=shard, attempt=attempt,
                         detail=detail)
        )
        if reason is FailureReason.SHARD_TIMEOUT:
            self.timeouts += 1

    def demote(self, domain: str, from_path: str, to_path: str,
               reason: FailureReason, detail: str = "") -> None:
        self.demotions.append(
            DemotionEvent(domain=domain, from_path=from_path,
                          to_path=to_path, reason=reason, detail=detail)
        )


@dataclass
class ShardRunReport:
    """Metrics of one sharded maintenance/cleaning evaluation.

    ``skipped`` shards were proven untouched by the pending deltas and
    reassembled from the stale view without any evaluation.
    ``transport`` describes what the round shipped to pool workers.

    Failure telemetry is structured and machine-readable: ``failures``
    (every observed failure with a :class:`~repro.reliability.telemetry.
    FailureReason`, the shard it hit, and the attempt), ``demotions``
    (fast paths abandoned for a fallback this round), ``retries`` /
    ``timeouts`` counters, ``recovered`` (shards whose results came
    from the serial fallback after the pool gave up on them — the round
    still produced the exact answer), and ``breaker`` (the process
    backend's circuit-breaker state after the round).  All field types
    pickle stably across backends and Python versions (``FailureReason``
    is a str-enum).
    """

    view: str
    attrs: Tuple[str, ...]
    backend: str
    shards: List[ShardTiming] = field(default_factory=list)
    partitioned: Tuple[str, ...] = ()
    transport: TransportStats = field(default_factory=TransportStats)
    retries: int = 0
    timeouts: int = 0
    failures: Tuple[FailureEvent, ...] = ()
    demotions: Tuple[DemotionEvent, ...] = ()
    recovered: Tuple[int, ...] = ()
    breaker: str = "closed"

    @property
    def count(self) -> int:
        return len(self.shards)

    @property
    def skipped_count(self) -> int:
        return sum(1 for s in self.shards if s.skipped)

    @property
    def total_rows(self) -> int:
        return sum(s.rows for s in self.shards)

    @property
    def eval_seconds(self) -> float:
        """Summed per-shard evaluation time (CPU cost, not wall time)."""
        return sum(s.seconds for s in self.shards)

    @property
    def input_bytes(self) -> int:
        """Serialized bytes shipped to workers this round."""
        return self.transport.input_bytes

    def failure_reasons(self) -> Tuple[FailureReason, ...]:
        """The distinct reasons observed this round, in first-seen order."""
        seen: List[FailureReason] = []
        for event in self.failures:
            if event.reason not in seen:
                seen.append(event.reason)
        return tuple(seen)

    def summary(self) -> str:
        t = self.transport
        wire = ""
        if t.transport != "local":
            wire = (
                f", {t.transport} transport: {t.input_bytes / 1e6:.2f} MB "
                f"shipped / {t.shm_resident_bytes / 1e6:.2f} MB resident"
            )
        if t.pool_rebuilt:
            wire += ", pool rebuilt"
        if self.retries:
            wire += f", {self.retries} retr{'y' if self.retries == 1 else 'ies'}"
        if self.timeouts:
            wire += f", {self.timeouts} timeout(s)"
        if self.recovered:
            wire += (f", shards {list(self.recovered)} recovered on the "
                     f"serial fallback")
        for d in self.demotions:
            wire += (f", {d.domain} {d.from_path}->{d.to_path} "
                     f"({d.reason})")
        if t.demoted:
            wire += f", DEMOTED ({t.demoted})"
        return (
            f"{self.view}: {self.count} shard(s) on {self.backend}, "
            f"{self.skipped_count} skipped, {self.total_rows} rows, "
            f"eval {self.eval_seconds * 1e3:.1f} ms "
            f"(partitioned: {', '.join(self.partitioned) or 'none'})"
            + wire
        )


@dataclass
class UtilizationSummary:
    """Aggregate statistics of a CPU-utilization trace (Fig 16)."""

    mean: float
    p10: float
    p90: float
    idle_seconds_below_25: int

    @classmethod
    def from_trace(cls, trace: np.ndarray) -> "UtilizationSummary":
        return cls(
            mean=float(trace.mean()),
            p10=float(np.percentile(trace, 10)),
            p90=float(np.percentile(trace, 90)),
            idle_seconds_below_25=int((trace < 25).sum()),
        )


def compare_utilization(
    model: ClusterModel, batch_gb: float, seconds: int = 300, seed: int = 0
) -> Dict[str, UtilizationSummary]:
    """Fig 16: IVM-only vs IVM+SVC utilization summaries."""
    ivm = cpu_utilization_trace(model, batch_gb, seconds, with_svc=False,
                                seed=seed)
    both = cpu_utilization_trace(model, batch_gb, seconds, with_svc=True,
                                 seed=seed)
    return {
        "IVM": UtilizationSummary.from_trace(ivm),
        "IVM+SVC": UtilizationSummary.from_trace(both),
    }
