"""Tests for adaptive parameter selection (the paper's §9 extension)."""

import numpy as np
import pytest

from repro.algebra import Relation, Schema
from repro.core.adaptive import (
    RatioController,
    adaptive_outlier_threshold,
    choose_sampling_ratio,
    expected_ci_width,
)
from repro.core.estimators import AggQuery
from repro.core.hashing import hash_sample
from repro.errors import EstimationError


@pytest.fixture(scope="module")
def view_data():
    rng = np.random.default_rng(3)
    rows = [(i, float(rng.gamma(2.0, 10.0))) for i in range(8000)]
    return Relation(Schema(["k", "v"]), rows, key=("k",), name="view")


class TestExpectedWidth:
    def test_width_shrinks_with_ratio(self, view_data):
        pilot = hash_sample(view_data, 0.05, seed=0)
        q = AggQuery("sum", "v")
        w_small = expected_ci_width(pilot, q, 0.05, 0.05)
        w_large = expected_ci_width(pilot, q, 0.05, 0.5)
        assert w_large < w_small

    def test_full_ratio_width_zero(self, view_data):
        pilot = hash_sample(view_data, 0.05, seed=0)
        assert expected_ci_width(pilot, AggQuery("sum", "v"), 0.05, 1.0) == 0.0

    def test_prediction_matches_actual(self, view_data):
        """The pilot prediction at m should track the actual CI at m."""
        from repro.core.estimators import svc_aqp

        pilot = hash_sample(view_data, 0.05, seed=1)
        q = AggQuery("sum", "v")
        predicted = expected_ci_width(pilot, q, 0.05, 0.3)
        actual_sample = hash_sample(view_data, 0.3, seed=2)
        est = svc_aqp(actual_sample, q, 0.3)
        actual = est.ci_high - est.ci_low
        assert predicted == pytest.approx(actual, rel=0.5)

    def test_empty_pilot_raises(self):
        empty = Relation(Schema(["k", "v"]), [], key=("k",))
        with pytest.raises(EstimationError):
            expected_ci_width(empty, AggQuery("sum", "v"), 0.05, 0.1)


class TestChooseRatio:
    def test_tighter_budget_needs_bigger_sample(self, view_data):
        q = AggQuery("sum", "v")
        loose = choose_sampling_ratio(view_data, q, 0.2, seed=4)
        tight = choose_sampling_ratio(view_data, q, 0.02, seed=4)
        assert tight >= loose

    def test_budget_is_met(self, view_data):
        from repro.core.estimators import svc_aqp

        q = AggQuery("sum", "v")
        target = 0.1
        m = choose_sampling_ratio(view_data, q, target, seed=5)
        sample = hash_sample(view_data, m, seed=6)
        est = svc_aqp(sample, q, m)
        rel_width = (est.ci_high - est.ci_low) / est.value
        assert rel_width <= target * 2  # pilot noise tolerance

    def test_invalid_budget(self, view_data):
        with pytest.raises(EstimationError):
            choose_sampling_ratio(view_data, AggQuery("sum", "v"), 0.0)


class TestAdaptiveThreshold:
    def test_sigma_rule_when_under_cap(self):
        rel = Relation(Schema(["k", "v"]),
                       [(i, float(i % 10)) for i in range(100)], key=("k",))
        t = adaptive_outlier_threshold(rel, "v", size_limit=50, c=3.0)
        arr = rel.column_array("v")
        assert t == pytest.approx(arr.mean() + 3 * arr.std())

    def test_topk_fallback_when_sigma_overflows(self):
        rel = Relation(Schema(["k", "v"]),
                       [(i, float(i)) for i in range(100)], key=("k",))
        t = adaptive_outlier_threshold(rel, "v", size_limit=5, c=0.0)
        assert int((rel.column_array("v") > t).sum()) <= 5

    def test_empty_relation(self):
        rel = Relation(Schema(["k", "v"]), [], key=("k",))
        assert adaptive_outlier_threshold(rel, "v", 10) == 0.0


class TestRatioController:
    def test_grows_when_too_wide(self):
        ctl = RatioController(target_relative_width=0.05, ratio=0.1)
        new = ctl.update(observed_relative_width=0.2)
        assert new > 0.1

    def test_shrinks_when_too_tight(self):
        ctl = RatioController(target_relative_width=0.05, ratio=0.5)
        new = ctl.update(observed_relative_width=0.01)
        assert new < 0.5

    def test_clamped(self):
        ctl = RatioController(target_relative_width=0.05, ratio=0.9,
                              max_ratio=1.0)
        for _ in range(10):
            ctl.update(1.0)
        assert ctl.ratio == 1.0

    def test_converges_on_stationary_workload(self):
        """Width ∝ √(1/m): simulate and check the controller settles."""
        ctl = RatioController(target_relative_width=0.05, ratio=0.02)
        k = 0.05 * np.sqrt(0.1)  # so that m=0.1 hits the target exactly
        for _ in range(30):
            observed = k / np.sqrt(ctl.ratio)
            ctl.update(observed)
        assert ctl.ratio == pytest.approx(0.1, rel=0.2)

    def test_non_positive_observation_ignored(self):
        ctl = RatioController(target_relative_width=0.05, ratio=0.1)
        assert ctl.update(0.0) == 0.1
