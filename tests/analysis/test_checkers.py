"""Self-hosting rule tests: each rule fires on its minimal bad snippet
and stays quiet on the repaired form."""


# ---------------------------------------------------------------------------
# REP001 — unregistered module-level cache
# ---------------------------------------------------------------------------


class TestRep001Caches:
    def test_fires_on_unregistered_cache(self, project):
        project.write(
            "src/repro/algebra/memo.py",
            """
            _PLAN_CACHE = {}
            """,
        )
        assert project.rules() == ["REP001"]

    def test_quiet_when_registered(self, project):
        project.write(
            "src/repro/algebra/memo.py",
            """
            from repro.caches import register_cache

            _PLAN_CACHE = {}


            def _clear():
                _PLAN_CACHE.clear()


            register_cache(
                "algebra.memo.plan_cache",
                clear=_clear,
                size=lambda: len(_PLAN_CACHE),
            )
            """,
        )
        assert project.rules() == []

    def test_ignores_non_cache_names_and_immutables(self, project):
        project.write(
            "src/repro/algebra/memo.py",
            """
            _ROWS = []          # mutable but not named like a cache
            _SIZE_CACHE = 128   # cache-named but not a container
            _KEY_MEMO = ("a",)  # cache-named but immutable
            """,
        )
        assert project.rules() == []

    def test_list_and_annotated_caches_fire_too(self, project):
        project.write(
            "src/repro/db/memo.py",
            """
            from typing import Dict

            _SHARD_MEMOS = []
            _CALIBRATION_CACHE: Dict = dict()
            """,
        )
        assert project.rules() == ["REP001", "REP001"]


# ---------------------------------------------------------------------------
# REP002 — raw SharedMemory lifecycle outside the transport/probe
# ---------------------------------------------------------------------------


SHM_SNIPPET = """
from multiprocessing.shared_memory import SharedMemory


def export(nbytes):
    return SharedMemory(create=True, size=nbytes)


def retire(seg):
    seg.unlink()
"""


class TestRep002SharedMemory:
    def test_fires_outside_allowlist(self, project):
        project.write("src/repro/db/export.py", SHM_SNIPPET)
        assert project.rules() == ["REP002", "REP002"]

    def test_quiet_inside_transport_and_probe(self, project):
        project.write("src/repro/distributed/transport.py", SHM_SNIPPET)
        project.write("src/repro/tuning/probe.py", SHM_SNIPPET)
        assert project.rules() == []

    def test_pathlib_unlink_with_args_not_flagged(self, project):
        project.write(
            "src/repro/db/files.py",
            """
            def cleanup(path):
                path.unlink(missing_ok=True)
            """,
        )
        assert project.rules() == []

    def test_attach_without_create_not_flagged(self, project):
        project.write(
            "src/repro/db/attach.py",
            """
            from multiprocessing.shared_memory import SharedMemory


            def attach(name):
                return SharedMemory(name=name)
            """,
        )
        assert project.rules() == []


# ---------------------------------------------------------------------------
# REP003 — set_* toggle without save/restore pairing
# ---------------------------------------------------------------------------


class TestRep003Toggles:
    def test_fires_on_unrestored_toggle(self, project):
        project.write(
            "src/repro/workloads/run.py",
            """
            from repro.algebra.evaluator import set_columnar_enabled


            def run():
                set_columnar_enabled(True)
                return 1
            """,
        )
        assert project.rules() == ["REP003"]

    def test_quiet_on_save_restore_pairing(self, project):
        project.write(
            "src/repro/workloads/run.py",
            """
            from repro.algebra.evaluator import set_columnar_enabled


            def run():
                old = set_columnar_enabled(True)
                try:
                    return 1
                finally:
                    set_columnar_enabled(old)
            """,
        )
        assert project.rules() == []

    def test_quiet_on_restore_outside_finally(self, project):
        project.write(
            "src/repro/workloads/run.py",
            """
            def run():
                old = set_hash_family("tab")
                out = work()
                set_hash_family(old)
                return out
            """,
        )
        assert project.rules() == []

    def test_method_setters_and_own_definition_exempt(self, project):
        project.write(
            "src/repro/workloads/run.py",
            """
            def set_columnar_enabled(flag):
                set_flag(flag)  # a toggle's own body is the entry point


            def configure(view):
                view.set_data([1, 2])  # attribute call: setter, not toggle
            """,
        )
        assert project.rules() == []


# ---------------------------------------------------------------------------
# REP004 — silent except Exception in a failure domain
# ---------------------------------------------------------------------------


class TestRep004Failures:
    def test_fires_on_silent_swallow_in_domain(self, project):
        project.write(
            "src/repro/distributed/rounds.py",
            """
            def run(step):
                try:
                    step()
                except Exception:
                    pass
            """,
        )
        assert project.rules() == ["REP004"]

    def test_bare_except_fires_too(self, project):
        project.write(
            "src/repro/serving/tick.py",
            """
            def tick(step):
                try:
                    step()
                except:  # noqa: E722
                    return None
            """,
        )
        assert project.rules() == ["REP004"]

    def test_quiet_when_telemetry_recorded(self, project):
        project.write(
            "src/repro/distributed/rounds.py",
            """
            from repro.reliability.telemetry import FailureEvent, FailureReason


            def run(step, events):
                try:
                    step()
                except Exception as err:
                    events.append(
                        FailureEvent(
                            reason=FailureReason.WORKER_FAULT,
                            detail=repr(err),
                        )
                    )
            """,
        )
        assert project.rules() == []

    def test_quiet_on_reraise(self, project):
        project.write(
            "src/repro/reliability/guard.py",
            """
            def run(step):
                try:
                    step()
                except Exception:
                    raise
            """,
        )
        assert project.rules() == []

    def test_quiet_outside_failure_domains(self, project):
        project.write(
            "src/repro/algebra/util.py",
            """
            def run(step):
                try:
                    step()
                except Exception:
                    pass
            """,
        )
        assert project.rules() == []

    def test_narrow_handler_not_flagged(self, project):
        project.write(
            "src/repro/distributed/rounds.py",
            """
            def run(step):
                try:
                    step()
                except ValueError:
                    return None
            """,
        )
        assert project.rules() == []


# ---------------------------------------------------------------------------
# REP005 — columnar fast path outside the fallback guard
# ---------------------------------------------------------------------------


class TestRep005Fallback:
    def test_fires_on_unguarded_fastpath(self, project):
        project.write(
            "src/repro/algebra/dispatch.py",
            """
            def dispatch(rel):
                return _try_mask(rel)
            """,
        )
        assert project.rules() == ["REP005"]

    def test_quiet_on_none_guarded_dispatch(self, project):
        project.write(
            "src/repro/algebra/dispatch.py",
            """
            def dispatch(rel):
                fast = _try_mask(rel)
                if fast is not None:
                    return fast
                return slow_path(rel)
            """,
        )
        assert project.rules() == []

    def test_quiet_on_walrus_guard(self, project):
        project.write(
            "src/repro/algebra/dispatch.py",
            """
            def dispatch(rel):
                if (fast := _select_columnar(rel)) is not None:
                    return fast
                return slow_path(rel)
            """,
        )
        assert project.rules() == []

    def test_fastpath_may_delegate_in_return_position(self, project):
        project.write(
            "src/repro/algebra/dispatch.py",
            """
            def _join_columnar(rel):
                return _try_mask(rel)  # None propagates to the real guard
            """,
        )
        assert project.rules() == []

    def test_module_level_call_fires(self, project):
        project.write(
            "src/repro/algebra/dispatch.py",
            """
            ROWS = _try_mask(None)
            """,
        )
        assert project.rules() == ["REP005"]


# ---------------------------------------------------------------------------
# REP006 — worker-reachable mutation of module-level mutable state
# ---------------------------------------------------------------------------


class TestRep006Workers:
    def test_fires_on_reachable_unlocked_mutation(self, project):
        project.write(
            "src/repro/distributed/shard.py",
            """
            _RESULTS = {}


            def _run_worker_blob(blob):
                return _evaluate(blob)


            def _evaluate(blob):
                _RESULTS[blob] = 1  # raced by thread-pool workers
                return _RESULTS[blob]
            """,
        )
        assert project.rules() == ["REP006"]

    def test_quiet_under_lock(self, project):
        project.write(
            "src/repro/distributed/shard.py",
            """
            import threading

            _LOCK = threading.Lock()
            _RESULTS = {}


            def _run_worker_blob(blob):
                return _evaluate(blob)


            def _evaluate(blob):
                with _LOCK:
                    _RESULTS[blob] = 1
                return 1
            """,
        )
        assert project.rules() == []

    def test_quiet_when_not_worker_reachable(self, project):
        project.write(
            "src/repro/distributed/shard.py",
            """
            _RESULTS = {}


            def _run_worker_blob(blob):
                return blob


            def coordinator_only(key):
                _RESULTS[key] = 1  # never runs on a pool worker
            """,
        )
        assert project.rules() == []

    def test_follows_imports_across_modules(self, project):
        project.write(
            "src/repro/distributed/shard.py",
            """
            from repro.distributed.tasks import handle


            def _run_worker_blob(blob):
                return handle(blob)
            """,
        )
        project.write(
            "src/repro/distributed/tasks.py",
            """
            _SEEN = set()


            def handle(blob):
                _SEEN.add(blob)
                return blob
            """,
        )
        assert project.rules() == ["REP006"]

    def test_mutator_methods_fire(self, project):
        project.write(
            "src/repro/distributed/shard.py",
            """
            _PENDING = []


            def _run_local_task(task):
                _PENDING.append(task)
                return task
            """,
        )
        assert project.rules() == ["REP006"]
