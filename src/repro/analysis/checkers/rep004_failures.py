"""REP004: failure domains must not swallow exceptions silently.

The distributed executor, the serving layer, and the reliability
machinery are *failure domains*: they deliberately catch broad
exceptions to degrade instead of crash.  That is only auditable if
every swallow leaves a trace — a re-raise, a
:class:`~repro.reliability.telemetry.FailureReason` /
``FailureEvent`` / ``DemotionEvent`` record, or a call to one of the
telemetry recorders.  A bare ``except Exception: pass``-shaped handler
drops the cause on the floor and turns the next incident into
guesswork.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.context import ModuleContext, call_name
from repro.analysis.findings import Finding
from repro.analysis.registry import FileChecker, register_checker

#: Path fragments marking a module as a failure domain.
DOMAIN_FRAGMENTS: Tuple[str, ...] = (
    "repro/distributed/",
    "repro/serving/",
    "repro/reliability/",
)

#: Telemetry type constructors/references that count as recording.
TELEMETRY_NAMES = frozenset(
    {"FailureReason", "FailureEvent", "DemotionEvent"}
)

#: Recorder calls that are known to attach failure telemetry.
RECORDER_CALLS = frozenset({"record", "record_failure", "_failed_round"})


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:  # bare ``except:``
        return True
    names = []
    if isinstance(kind, ast.Name):
        names = [kind.id]
    elif isinstance(kind, ast.Tuple):
        names = [e.id for e in kind.elts if isinstance(e, ast.Name)]
    return any(n in ("Exception", "BaseException") for n in names)


def _records_failure(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Name) and node.id in TELEMETRY_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in TELEMETRY_NAMES:
            return True
        if isinstance(node, ast.Call) and call_name(node) in RECORDER_CALLS:
            return True
    return False


@register_checker
class SwallowedFailureChecker(FileChecker):
    rule = "REP004"
    name = "silent-swallow"
    title = "except Exception in a failure domain without telemetry"
    severity = "error"

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        if not any(frag in module.rel for frag in DOMAIN_FRAGMENTS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_handler(node):
                continue
            if _records_failure(node):
                continue
            yield self.finding(
                module,
                node,
                "broad exception handler in a failure domain neither "
                "re-raises nor records FailureReason telemetry",
                hint=(
                    "attach a FailureEvent (telemetry.record(...) / "
                    "FailureReason.<CAUSE>) so the swallow stays "
                    "auditable, or suppress with the reason the loss "
                    "is acceptable"
                ),
            )
