"""Sharded parallel view maintenance — the partition-parallel executor.

Because every maintenance strategy M(S, D, ∂D) is an ordinary relational
expression over named leaves (paper §3.1), sharding needs no expression
rewriting at all: build one *leaf environment per shard* — partitioned
base relations, partitioned ∆R/∇R, the matching slice of the stale view,
and shared (replicated) copies of everything else — and evaluate the
same strategy expression against each.  Concatenating the per-shard
results yields exactly the single-shard answer.

Three pieces live here:

* :class:`ShardPlan` / :func:`plan_shards` — decides the maintenance key
  (group key for SPJA views, view key for SPJ) and which base relations
  can be hash-partitioned on it versus replicated to every shard.  The
  planner only shards the structures whose partition-correctness it can
  prove (SPJ cores of inner joins); everything else falls back to the
  single-shard reference path.
* :func:`evaluate_sharded` / :func:`_run_tasks` — run the per-shard
  evaluations serially, on a thread pool, or on a persistent fork-based
  process pool (``concurrent.futures``), and concatenate the results.
  Shard results travel as *columnar batches*: a worker returns its
  relation exactly as the batch-native evaluator produced it (the
  vectorized join/merge pipeline ends in a column batch, not rows), so
  process-backend payloads pickle as numpy buffers and the concatenated
  view stays columnar until something reads its rows.  Shards untouched
  by the pending delta are skipped structurally and their slice of the
  stale view is reused as-is.
* The **shard transport** — how a round's inputs reach the process
  pool.  The default ``"shm"`` transport
  (:mod:`repro.distributed.transport`) exports each distinct relation
  once into a shared-memory segment of numpy column buffers and keeps
  it resident in the workers across rounds; a task then ships only the
  expression, a small manifest, and whatever actually changed (delta
  partitions, the freshly maintained view).  ``"pickle"`` is the
  reference transport that serializes the full environment into every
  task payload.  Broken pools are recreated once and retried; a pool
  that fails twice in one round permanently demotes the backend to
  threads (recorded on :class:`ShardRunReport`), so a broken sandbox is
  paid for once, not every round.
* :func:`set_shard_count` — the global toggle.  ``set_shard_count(1)``
  (the default) is the reference single-shard path; every sharded result
  is row-for-row equal to it (property-tested in
  ``tests/db/test_sharded_maintenance.py``).
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.algebra.compiler import bump_plan_epoch, compiled_evaluate, plan_epoch
from repro.algebra.expressions import (
    Aggregate,
    BaseRel,
    Expr,
    Join,
    Project,
    Select,
)
from repro.algebra.keys import derive_key, derive_schema
from repro.algebra.relation import Relation
from repro.db.deltas import deletions_name, insertions_name
from repro.db.maintenance import is_spj
from repro.db.sharding import partition_leaves, partition_relation
from repro.distributed import transport as _transport
from repro.distributed.metrics import ShardRunReport, ShardTiming, TransportStats
from repro.errors import KeyDerivationError, MaintenanceError

# ----------------------------------------------------------------------
# Global shard configuration (the set_shard_count toggle)
# ----------------------------------------------------------------------

#: Executor backends.  ``process`` keeps a persistent fork-based worker
#: pool and ships each shard's task over the configured transport; it
#: is the default on platforms with ``os.fork``.  ``thread`` is the
#: portable fallback (shares caches, contends on the GIL for row-path
#: operators); ``serial`` runs shards in a loop (tests, debugging).
BACKENDS = ("serial", "thread", "process")

#: Process-backend transports.  ``shm`` keeps shard environments
#: resident in shared-memory segments across rounds (delta-only
#: re-ship); ``pickle`` serializes the full environment into every task
#: payload (the reference transport, and the fallback where POSIX
#: shared memory is unavailable).
TRANSPORTS = ("shm", "pickle")


@dataclass
class ShardConfig:
    """How sharded maintenance executes.

    ``count == 1`` is the single-shard reference path.  ``max_workers``
    defaults to ``min(count, cpu_count)``.  ``transport`` only matters
    for the ``process`` backend.
    """

    count: int = 1
    backend: str = "process" if hasattr(os, "fork") else "thread"
    max_workers: Optional[int] = None
    transport: str = "shm"

    def workers(self) -> int:
        cpus = os.cpu_count() or 1
        if self.max_workers is not None:
            return max(1, self.max_workers)
        return max(1, min(self.count, cpus))


_CONFIG = ShardConfig()


def set_shard_count(
    count: int,
    backend: Optional[str] = None,
    max_workers: Optional[int] = None,
    transport: Optional[str] = None,
) -> int:
    """Set the global shard count (1 = reference single-shard path).

    ``backend``, ``max_workers`` and ``transport`` are sticky: omitting
    them keeps the current setting, so a count-only override (e.g.
    ``Catalog.maintain_all(shards=n)``) never drops a worker cap the
    user configured.  Pass ``max_workers=0`` to clear the cap.

    Shared-memory residency deliberately *survives* count changes:
    store slots are keyed by shard layout, so the per-period
    ``maintain_all(shards=n)`` toggle (4 → 1 → 4 …) keeps its exports
    warm across periods, which is where the transport's steady-state
    win comes from.  Exports for a layout that is never used again are
    freed by ``shutdown_shard_pool()`` (or interpreter exit).
    Explicitly leaving the ``shm`` transport *does* unlink everything —
    the user opted out, so keeping the segments would be pure waste —
    and explicitly requesting ``backend="process"`` clears a permanent
    pool demotion: the user is asking for another try.  Returns the
    previous count so callers can restore it::

        old = set_shard_count(4)
        try: ...
        finally: set_shard_count(old)
    """
    global _CONFIG
    if count < 1:
        raise MaintenanceError(f"shard count must be >= 1: {count}")
    if backend is not None and backend not in BACKENDS:
        raise MaintenanceError(
            f"unknown shard backend {backend!r}; expected one of {BACKENDS}"
        )
    if transport is not None and transport not in TRANSPORTS:
        raise MaintenanceError(
            f"unknown shard transport {transport!r}; expected one of {TRANSPORTS}"
        )
    if max_workers is None:
        max_workers = _CONFIG.max_workers
    elif max_workers == 0:
        max_workers = None
    if backend == "process":
        clear_pool_demotion()
    old = _CONFIG.count
    new_transport = transport if transport is not None else _CONFIG.transport
    if _CONFIG.transport == "shm" and new_transport != "shm":
        _transport.close_store()
    _CONFIG = ShardConfig(
        count=count,
        backend=backend if backend is not None else _CONFIG.backend,
        max_workers=max_workers,
        transport=new_transport,
    )
    if count != old:
        # Shard layout is part of the environment a compiled plan (and
        # the per-view shard-plan memo) was built against.
        bump_plan_epoch()
    return old


def get_shard_count() -> int:
    """The active shard count (1 when sharding is off)."""
    return _CONFIG.count


def get_shard_config() -> ShardConfig:
    """The active shard configuration."""
    return _CONFIG


# ----------------------------------------------------------------------
# Planning: which leaves partition, which replicate
# ----------------------------------------------------------------------
@dataclass
class ShardPlan:
    """The partition decision for one view's maintenance.

    ``attrs`` are the maintenance-key columns *of the view schema*;
    ``partitioned`` maps leaf name -> columns of that leaf to hash on
    (delta leaves ``R__ins``/``R__del`` follow their base relation
    automatically; the stale view partitions on ``attrs``).  Leaves not
    listed are replicated to every shard.  ``reason`` documents why a
    view is not shardable.
    """

    view_name: str
    attrs: Tuple[str, ...] = ()
    partitioned: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    reason: str = ""

    @property
    def shardable(self) -> bool:
        return bool(self.partitioned)

    def leaf_partitions(self) -> Dict[str, Tuple[str, ...]]:
        """Partition columns for every leaf name, deltas and view included."""
        out = {self.view_name: self.attrs}
        for name, cols in self.partitioned.items():
            out[name] = cols
            out[insertions_name(name)] = cols
            out[deletions_name(name)] = cols
        return out


def _leaf_attr_maps(
    expr: Expr, attr_map: Dict[str, str], leaves: Mapping
) -> Dict[str, Dict[str, str]]:
    """Per-leaf resolution of shard attributes to leaf column names.

    ``attr_map`` maps each shard attribute to its column name at this
    level of the tree.  Attributes propagate down through selections,
    pass-through projection outputs, and join sides; crucially they cross
    a join onto the *other* side only along an equality pair, which is
    what makes co-partitioning two joined relations safe (rows that join
    agree on the equated columns, hence on the shard route).

    Relations that appear more than once keep only occurrence-consistent
    resolutions (a self-join role conflict drops the leaf).
    """
    if isinstance(expr, BaseRel):
        schema = derive_schema(expr, leaves)
        resolved = {a: c for a, c in attr_map.items() if c in schema}
        return {expr.name: resolved} if resolved else {}
    if isinstance(expr, Select):
        return _leaf_attr_maps(expr.child, attr_map, leaves)
    if isinstance(expr, Project):
        passthrough = {}  # output name -> source column (first wins)
        for out in expr.outputs:
            src = out.source_column()
            if src is not None and out.name not in passthrough:
                passthrough[out.name] = src
        child_map = {
            a: passthrough[c] for a, c in attr_map.items() if c in passthrough
        }
        if not child_map:
            return {}
        return _leaf_attr_maps(expr.child, child_map, leaves)
    if isinstance(expr, Join):
        left_schema = derive_schema(expr.left, leaves)
        right_schema = derive_schema(expr.right, leaves)
        pairs = dict(expr.on)  # left col -> right col
        rpairs = {rc: lc for lc, rc in expr.on}
        left_map, right_map = {}, {}
        for a, c in attr_map.items():
            if c in left_schema:
                left_map[a] = c
                # Equality transfer: the attribute also resolves on the
                # right side when the join equates it (and vice versa).
                if c in pairs and pairs[c] in right_schema:
                    right_map[a] = pairs[c]
            elif c in right_schema:
                right_map[a] = c
                if c in rpairs and rpairs[c] in left_schema:
                    left_map[a] = rpairs[c]
        out: Dict[str, Dict[str, str]] = {}
        for side, side_map in ((expr.left, left_map), (expr.right, right_map)):
            if not side_map:
                continue
            for name, m in _leaf_attr_maps(side, side_map, leaves).items():
                if name in out:
                    # Same relation in both roles: keep only entries the
                    # occurrences agree on.
                    out[name] = {
                        a: c for a, c in out[name].items() if m.get(a) == c
                    }
                else:
                    out[name] = m
        return {n: m for n, m in out.items() if m}
    # Any other operator (set ops, nested aggregates, η, merge): no
    # partition-safety proof — everything below replicates.
    return {}


def _has_non_inner_join(expr: Expr) -> bool:
    """Outer joins preserve unmatched rows of a side; replicating that
    side would emit the padding row once per shard, so the planner
    refuses the whole view (conservative, and unused by the repo's
    views, which are all FK inner joins)."""
    if isinstance(expr, Join) and expr.how != "inner":
        return True
    return any(_has_non_inner_join(c) for c in expr.children())


def _plan_score(partitioned: Dict[str, Tuple[str, ...]], database) -> int:
    """Rows covered by a candidate plan: base + pending delta sizes.

    Partitioning the relations that carry the data (and the deltas that
    drive the maintenance cost) is what buys parallel speedup; a plan
    that only partitions a small dimension table scores low.
    """
    score = 0
    for name in partitioned:
        try:
            score += len(database.relation(name))
        except MaintenanceError:
            continue
        delta = database.deltas.get(name)
        if delta is not None:
            score += len(delta.inserted) + len(delta.deleted)
    return score


def plan_shards(view) -> ShardPlan:
    """Decide the maintenance key and partitionable leaves for a view.

    SPJA views shard on (a traceable subset of) the group key; SPJ views
    on (a traceable subset of) the view key — any non-empty subset keeps
    whole merge groups co-located because the view key determines every
    routing value.  Among the candidate subsets the planner picks the
    one covering the most base/delta rows with partitioned relations.

    The decision is memoized on the view, keyed by the plan epoch and
    the database's relation inventory: the partition proof depends only
    on the view structure and leaf schemas, so per-round replanning is
    pure overhead — but the memo must not survive ``set_hash_family`` /
    ``set_shard_count`` / ``set_columnar_enabled`` (all bump the epoch)
    or a relation being added/dropped.  Any candidate plan is *correct*
    (scores only steer performance), so memoizing across delta changes
    is sound.
    """
    token = (plan_epoch(), tuple(sorted(view.database.relation_names())))
    memo = getattr(view, "_shard_plan_memo", None)
    if memo is not None and memo[0] == token:
        return memo[1]
    plan = _plan_shards_fresh(view)
    view._shard_plan_memo = (token, plan)
    return plan


def _plan_shards_fresh(view) -> ShardPlan:
    """The unmemoized planning pass behind :func:`plan_shards`."""
    definition = view.definition
    database = view.database
    leaves = database.leaves()

    if isinstance(definition, Aggregate):
        core = definition.child
        attrs = tuple(definition.group_by)
        if not attrs:
            return ShardPlan(view.name, reason="global aggregate (no group key)")
        if not is_spj(core):
            return ShardPlan(view.name, reason="aggregate core is not SPJ")
    elif is_spj(definition):
        core = definition
        attrs = tuple(view.key or ())
        if not attrs:
            return ShardPlan(view.name, reason="view has no key to shard on")
    else:
        return ShardPlan(view.name, reason="definition is not SPJ/SPJA")
    if _has_non_inner_join(core):
        return ShardPlan(view.name, reason="outer join in view core")

    try:
        maps = _leaf_attr_maps(core, {a: a for a in attrs}, leaves)
    except Exception:
        return ShardPlan(view.name, reason="attribute tracing failed")
    base_names = set(database.relation_names())
    maps = {n: m for n, m in maps.items() if n in base_names}
    if not maps:
        return ShardPlan(view.name, reason="no leaf resolves the shard key")

    # Candidate shard-key subsets: the full key, each leaf's resolvable
    # subset, and pairwise intersections of leaf subsets (a join view
    # often co-partitions both sides only on the shared join key).  Kept
    # in attrs order for determinism.
    leaf_subsets = [
        tuple(a for a in attrs if a in m) for m in maps.values()
    ]
    candidates = [attrs]
    for i, sub in enumerate(leaf_subsets):
        if sub and sub not in candidates:
            candidates.append(sub)
        for other in leaf_subsets[i + 1:]:
            both = tuple(a for a in sub if a in other)
            if both and both not in candidates:
                candidates.append(both)

    best: Optional[ShardPlan] = None
    best_score = -1
    for cand in candidates:
        partitioned = {
            name: tuple(m[a] for a in cand)
            for name, m in maps.items()
            if all(a in m for a in cand)
        }
        if not partitioned:
            continue
        score = _plan_score(partitioned, database)
        if score > best_score:
            best_score = score
            best = ShardPlan(view.name, attrs=cand, partitioned=partitioned)
    if best is None:
        return ShardPlan(view.name, reason="no partitionable leaf")
    return best


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

#: Report of the most recent sharded evaluation (None before the first).
_LAST_REPORT: List[Optional[ShardRunReport]] = [None]


def last_shard_report() -> Optional[ShardRunReport]:
    """Metrics of the most recent sharded evaluation in this process."""
    return _LAST_REPORT[0]


def _run_local_task(task):
    """Evaluate one shard's task; returns ``(relation, seconds)``.

    Evaluation goes through :func:`repro.algebra.compiler.
    compiled_evaluate`: the expression ships as a tree (closures do not
    pickle), but the worker-side plan cache is keyed by structural
    fingerprint, so the per-round strategy trees — rebuilt objects,
    identical shapes — hit one plan compiled per pool lifetime.

    The relation is returned *as evaluated* — columnar-backed results
    (vectorized joins, the columnar merge) stay columnar.  On the
    process backend they therefore pickle as numpy column buffers
    instead of per-row tuples, which is both smaller and skips the
    worker-side row materialization entirely.
    """
    expr, leaves = task[0], task[1]
    t0 = time.perf_counter()
    rel = compiled_evaluate(expr, leaves)
    return rel, time.perf_counter() - t0


def _apply_worker_toggles(family, columnar: bool) -> None:
    """Install the coordinator's evaluator toggles in a pool worker.

    Worker processes are long-lived (the pool persists across
    maintenance rounds), so the parent's current hash family and
    columnar flag ride along with every task instead of being frozen at
    fork time.
    """
    from repro.algebra.evaluator import columnar_enabled, set_columnar_enabled
    from repro.stats import hashing as _hashing

    if _hashing._active_family[0] is not family:
        # Installed directly (bypassing set_hash_family, which only
        # accepts registered names), so the plan-epoch bump that hook
        # performs must happen here too — a worker's cached plans must
        # not survive the coordinator switching families.
        _hashing._active_family[0] = family
        bump_plan_epoch()
    if columnar_enabled() != columnar:
        set_columnar_enabled(columnar)


def _run_worker_blob(blob: bytes):
    """Process-pool entry point: decode one task payload and evaluate.

    Payloads are pre-pickled by the coordinator (so shipped bytes can be
    accounted exactly, and so both transports share one worker).  Two
    shapes exist:

    * ``("pickle", expr, env, family, columnar)`` — the environment
      relations ride inside the payload.
    * ``("shm", expr, entries, live_ids, family, columnar)`` — each
      entry is either an :class:`~repro.distributed.transport.
      ExportManifest` to attach (cached across rounds, zero-copy) or an
      inlined small relation.  ``live_ids`` evicts attachments whose
      export the coordinator retired.
    """
    task = pickle.loads(blob)
    if task[0] == "shm":
        _, expr, entries, live_ids, family, columnar = task
        _transport.evict_stale(live_ids)
        env = {
            name: (
                _transport.attach_manifest(entry)
                if isinstance(entry, _transport.ExportManifest)
                else entry
            )
            for name, entry in entries.items()
        }
    else:
        _, expr, env, family, columnar = task
        # A pickle task means no export is live (either the transport
        # was never shm, or it fell back mid-session and the store was
        # closed) — drop any attachments left from earlier shm rounds
        # rather than holding the whole retired environment until the
        # pool dies.
        _transport.release_worker_cache()
    _apply_worker_toggles(family, columnar)
    return _run_local_task((expr, env))


# Persistent worker pool, keyed by (kind, max_workers).  Keeping the pool
# alive across maintenance rounds matters on CPython: tearing a forked
# pool down every round makes each short-lived child fault-copy the
# parent's heap during interpreter shutdown (refcount/GC writes on
# copy-on-write pages), which costs more than the evaluation itself.
_POOL: List = [None]
_POOL_KEY: List[Optional[tuple]] = [None]

#: Reason string once the process backend has been permanently demoted
#: (pool creation/execution failed twice in one round); None while the
#: backend is healthy.
_PROCESS_DEMOTED: List[Optional[str]] = [None]


def _get_pool(kind: str, workers: int):
    key = (kind, workers)
    if _POOL_KEY[0] != key and _POOL[0] is not None:
        _POOL[0].shutdown(wait=False, cancel_futures=True)
        _POOL[0] = None
    if _POOL[0] is None:
        if kind == "process":
            import multiprocessing

            try:
                # Start the resource tracker *before* forking workers so
                # every child inherits the parent's tracker.  A worker
                # that first touches shared memory with no inherited
                # tracker would lazily spawn its own, whose shutdown
                # then "cleans up" segments the coordinator still owns
                # (spurious unlink attempts and leak warnings).
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - tracker internals moved
                pass
            _POOL[0] = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        else:
            _POOL[0] = ThreadPoolExecutor(max_workers=workers)
        _POOL_KEY[0] = key
    return _POOL[0]


def _teardown_pool() -> None:
    """Drop the persistent pool (recovery path — residency survives)."""
    if _POOL[0] is not None:
        _POOL[0].shutdown(wait=False, cancel_futures=True)
        _POOL[0] = None
        _POOL_KEY[0] = None


def shutdown_shard_pool() -> None:
    """End the sharded session: tear down the worker pool *and* unlink
    every shared-memory export (tests; end of benchmarks)."""
    if _POOL[0] is not None:
        _POOL[0].shutdown(wait=True, cancel_futures=True)
        _POOL[0] = None
        _POOL_KEY[0] = None
    _transport.close_store()
    _transport.release_worker_cache()


def pool_demotion() -> Optional[str]:
    """Why the process backend is demoted (None while healthy)."""
    return _PROCESS_DEMOTED[0]


def clear_pool_demotion() -> None:
    """Give the process backend another chance (tests; explicit opt-in)."""
    _PROCESS_DEMOTED[0] = None


def _encode_process_tasks(tasks, config: ShardConfig):
    """Pre-pickle per-shard payloads; returns ``(payloads, stats)``.

    Tasks are ``(expr, env, shard_id)`` triples.  Under the ``shm``
    transport every environment relation is exported through the
    resident store (identity-memoized — unchanged leaves cost zero
    bytes) and the payload carries manifests; under ``pickle`` the whole
    environment serializes into the payload.  ``stats.input_bytes``
    counts exactly what crosses the process boundary this round: payload
    pickles plus newly written shared-memory bytes.
    """
    from repro.algebra.evaluator import columnar_enabled
    from repro.stats.hashing import get_hash_family

    family = get_hash_family()
    columnar = columnar_enabled()
    use_shm = config.transport == "shm" and _transport.shm_available()
    if use_shm:
        store = _transport.get_store()
        store.begin_round()
        try:
            per_task = []
            for expr, env, shard in tasks:
                entries = {}
                for name, rel in env.items():
                    manifest = store.export((name, shard, config.count), rel)
                    entries[name] = manifest if manifest is not None else rel
                per_task.append((expr, entries))
            live = store.live_ids()
            payloads = [
                pickle.dumps(
                    ("shm", expr, entries, live, family, columnar),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                for expr, entries in per_task
            ]
        except OSError as err:
            # /dev/shm full or missing mid-session: permanently fall
            # back to the pickle transport rather than failing rounds.
            _transport.disable_shm(f"shared-memory export failed: {err!r}")
            _transport.close_store()
            use_shm = False
        except BaseException:
            # Any other mid-encode failure (an unpicklable expression,
            # say) aborts the round before a single payload ships.  The
            # segments exported so far belong to a round that will never
            # run — retire them now, or a follow-up demotion to the
            # thread backend would orphan them in /dev/shm for the rest
            # of the session.
            store.rollback_round()
            raise
        else:
            written, resident, segments = store.round_stats()
            stats = TransportStats(
                transport="shm",
                input_bytes=sum(len(p) for p in payloads) + written,
                shm_written_bytes=written,
                shm_resident_bytes=resident,
                segments_created=segments,
            )
            return payloads, stats
    payloads = [
        pickle.dumps(
            ("pickle", expr, env, family, columnar),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        for expr, env, _ in tasks
    ]
    stats = TransportStats(
        transport="pickle", input_bytes=sum(len(p) for p in payloads)
    )
    return payloads, stats


def _run_tasks(tasks, config: ShardConfig):
    """Evaluate ``(expr, leaves, shard_id)`` tasks on the configured backend.

    Returns ``(results, backend_used, transport_stats)``.  A broken
    process pool is recreated and the round retried once (workers
    re-attach resident segments by name, so nothing is re-shipped); a
    second failure permanently demotes the backend to threads and
    records the reason — later rounds go straight to the demoted
    backend instead of re-paying the failure.
    """
    backend = config.backend
    workers = min(config.workers(), max(1, len(tasks)))
    if backend == "process" and not hasattr(os, "fork"):
        backend = "thread"
    if backend == "process" and _PROCESS_DEMOTED[0] is not None:
        backend = "thread"
    stats = TransportStats(transport="local", demoted=_PROCESS_DEMOTED[0] or "")
    if backend == "serial" or workers == 1 or len(tasks) <= 1:
        return [_run_local_task(t) for t in tasks], "serial", stats
    if backend == "process":
        try:
            payloads, stats = _encode_process_tasks(tasks, config)
        except Exception:
            # Encoding must never be able to break maintenance: an
            # unpicklable environment value (or an allocation failure
            # mid-export) degrades to the in-process path, exactly like
            # a broken pool used to.
            return [_run_local_task(t) for t in tasks], "serial", stats
        from concurrent.futures.process import BrokenProcessPool

        try:
            pool = _get_pool("process", workers)
            results = list(pool.map(_run_worker_blob, payloads))
            return results, "process", stats
        except (BrokenProcessPool, OSError):
            # Broken pool (killed workers, fork limits): recreate once
            # and retry — the payloads are still valid, and resident
            # segments are attachable by name from the fresh workers.
            _teardown_pool()
            try:
                pool = _get_pool("process", workers)
                results = list(pool.map(_run_worker_blob, payloads))
                stats.pool_rebuilt = True
                return results, "process", stats
            except Exception as err:
                _teardown_pool()
                _PROCESS_DEMOTED[0] = (
                    f"process pool failed twice in one round ({err!r}); "
                    f"demoted to the thread backend"
                )
                # Nothing reached a worker this round: the stats must
                # not claim shipped bytes, and any segments exported for
                # the round are useless to the demoted backend.
                _transport.close_store()
                stats = TransportStats(
                    transport="local", demoted=_PROCESS_DEMOTED[0]
                )
                return [_run_local_task(t) for t in tasks], "serial", stats
        except Exception:
            # A *task-level* error (some view's evaluation raised) is a
            # property of the work, not of the pool: rerun in-process so
            # the real exception surfaces from the reference path, and
            # leave the healthy pool and backend alone — demoting the
            # whole session over one bad view would punish every other
            # round.
            return [_run_local_task(t) for t in tasks], "serial", stats
    pool = _get_pool("thread", workers)
    return list(pool.map(_run_local_task, tasks)), "thread", stats


def _concat_shard_parts(schema, parts: List[Relation]) -> Relation:
    """Concatenate per-shard results into one relation.

    When every non-empty part is still columnar-backed the result stays
    columnar: each output column is a lazy, value-faithful concatenation
    of the shard columns, so a maintenance round whose shards all
    produced batches (vectorized joins ending in the columnar merge)
    never builds row tuples at the coordinator — the maintained view
    materializes rows only if something reads them.  As soon as one part
    is row-backed (identity slices of the stale view, row-path
    fallbacks) the row lists are concatenated directly instead.
    """
    from repro.algebra.columnar import ColumnarRelation, concat_column_parts

    filled = [p for p in parts if len(p)]
    if not filled:
        return Relation(schema, [])
    if len(filled) == 1:
        only = filled[0]
        if only.is_materialized:
            return Relation.trusted(schema, only.rows)
        return Relation.from_columnar(only.columnar())
    if any(p.is_materialized for p in filled):
        rows: List[tuple] = []
        for p in filled:
            rows.extend(p.rows)
        return Relation.trusted(schema, rows)
    batches = [p.columnar() for p in filled]
    nrows = sum(b.nrows for b in batches)

    def concat(name):
        def build():
            # One multi-way pass: pairwise concatenation would re-copy
            # the growing prefix once per shard.
            return concat_column_parts([b.array(name) for b in batches])

        return build

    batch = ColumnarRelation.from_providers(
        schema, {c: concat(c) for c in schema.columns}, nrows
    )
    return Relation.from_columnar(batch)


def evaluate_sharded(
    expr: Expr,
    leaves: Mapping,
    plan: ShardPlan,
    config: Optional[ShardConfig] = None,
    skip_shards: Optional[List[int]] = None,
    identity_rows: Optional[List[List[tuple]]] = None,
) -> Relation:
    """Evaluate one expression per shard and concatenate the results.

    ``skip_shards`` marks shards whose evaluation is known to be the
    identity on the stale view (no pending delta rows route to them
    under a change-table strategy); their rows are taken directly from
    ``identity_rows`` without evaluating anything.
    """
    config = config or _CONFIG
    n = config.count
    # Only partition leaves the expression references: a change-table
    # strategy reads the delta leaves and the stale view but never the
    # (large) stale base relations — partitioning those would cost a full
    # pass for nothing.
    referenced = {leaf.name for leaf in expr.leaves()}
    partitions = {
        name: cols
        for name, cols in plan.leaf_partitions().items()
        if name in referenced
    }
    shard_envs = partition_leaves(dict(leaves), partitions, n)
    skip = set(skip_shards or ())
    if skip:
        # Skipped shards evaluate nothing, so their transport slots for
        # the *per-round* leaves — delta slices and the stale-view
        # partition, new objects every round by construction — pin dead
        # data.  Free those so a permanently cold shard does not keep
        # retired rounds resident in shared memory for the session.
        # Static leaves are deliberately left alone: their memoized
        # partitions are identity-stable, so the resident export is live
        # data this shard (or another view sharing the leaf) will reuse.
        # Replicated per-round leaves are unaffected either way: their
        # export stays alive through the active shards' slots.
        store = _transport.peek_store()
        if store is not None:
            per_round = {plan.view_name}
            for name in plan.partitioned:
                per_round.add(insertions_name(name))
                per_round.add(deletions_name(name))
            for s in skip:
                for name in referenced & per_round:
                    store.release_slot((name, s, n))

    tasks = []
    task_shards = []
    for s, env in enumerate(shard_envs):
        if s in skip:
            continue
        # Ship only the leaves the expression reads: smaller task
        # payloads for the process backend, same result everywhere.
        tasks.append(
            (expr, {k: v for k, v in env.items() if k in referenced}, s)
        )
        task_shards.append(s)

    results, backend_used, transport_stats = _run_tasks(tasks, config)

    schema = None
    parts: List = []
    timings: List[ShardTiming] = []
    by_shard = dict(zip(task_shards, results))
    for s in range(n):
        if s in by_shard:
            rel, seconds = by_shard[s]
            if schema is None:
                schema = rel.schema
            parts.append(rel)
            timings.append(
                ShardTiming(shard=s, rows=len(rel), seconds=seconds,
                            skipped=False)
            )
        else:
            shard_rows = identity_rows[s] if identity_rows else []
            parts.append(shard_rows)
            timings.append(
                ShardTiming(shard=s, rows=len(shard_rows), seconds=0.0,
                            skipped=True)
            )
    if schema is None:
        # Every shard was skipped: the result is the reassembled input.
        schema = derive_schema(expr, leaves)
    # Identity slices arrive as raw (already-validated) row lists; wrap
    # them once the schema is known.
    parts = [
        p if isinstance(p, Relation) else Relation.trusted(schema, p)
        for p in parts
    ]
    out = _concat_shard_parts(schema, parts)
    try:
        out.key = derive_key(expr, leaves)
    except KeyDerivationError:
        out.key = None
    _LAST_REPORT[0] = ShardRunReport(
        view=plan.view_name,
        attrs=plan.attrs,
        backend=backend_used,
        shards=timings,
        partitioned=tuple(sorted(plan.partitioned)),
        transport=transport_stats,
    )
    return out


def _skippable_shards(view, plan: ShardPlan, n: int) -> Optional[List[int]]:
    """Shards guaranteed untouched by the pending deltas, or None.

    Only valid for change-table strategies (their merge with an empty
    change table is structurally the identity on the stale view).  A
    shard is skippable when every dirty relation of the view is
    partitioned and routes zero delta rows to it; one dirty *replicated*
    relation makes every shard non-skippable.
    """
    database = view.database
    view_leaves = {leaf.name for leaf in view.definition.leaves()}
    dirty = [name for name in database.deltas.dirty_relations()
             if name in view_leaves]
    if not dirty:
        return list(range(n))
    touched = set()
    for name in dirty:
        cols = plan.partitioned.get(name)
        if cols is None:
            return None
        delta = database.deltas.get(name)
        for rel in (delta.insertions_relation(), delta.deletions_relation()):
            for part_id, part in enumerate(partition_relation(rel, cols, n)):
                if part.rows:
                    touched.add(part_id)
    return [s for s in range(n) if s not in touched]


def run_sharded(
    view, expr: Expr, strategy, identity_source: Optional[Relation] = None,
    config: Optional[ShardConfig] = None,
) -> Optional[Relation]:
    """Shared sharded-evaluation flow for maintenance *and* cleaning.

    Evaluates ``expr`` (the strategy expression, or a cleaning
    expression built from it) per shard.  Under a change-table strategy
    the shards no delta row routes to are skipped and their rows are
    taken from ``identity_source`` — the stale view for maintenance, the
    dirty sample for cleaning (η of an untouched stale slice *is* the
    dirty sample's slice).  Returns ``None`` when sharding is off or the
    view is not shardable; the caller falls back to the single-shard
    reference path.
    """
    from repro.db.maintenance import CHANGE_TABLE

    config = config or _CONFIG
    if config.count <= 1:
        return None
    plan = plan_shards(view)
    if not plan.shardable:
        return None

    skip = None
    identity_rows = None
    if strategy.kind == CHANGE_TABLE and identity_source is not None:
        skip = _skippable_shards(view, plan, config.count)
        if skip:
            identity_rows = [
                part.rows
                for part in partition_relation(
                    identity_source, plan.attrs, config.count
                )
            ]
    return evaluate_sharded(
        expr,
        view.database.leaves(),
        plan,
        config,
        skip_shards=skip,
        identity_rows=identity_rows,
    )


def maintain_sharded(view, strategy, config: Optional[ShardConfig] = None):
    """Run one maintenance strategy sharded; returns the new relation.

    Returns ``None`` when the view is not shardable (caller falls back
    to the single-shard reference path).
    """
    return run_sharded(
        view, strategy.expr, strategy,
        identity_source=view.require_data(), config=config,
    )
