"""Conviva-like video-log workload — paper §7.5 and §12.6.2.

The paper's distributed experiments use 1 TB of production user-activity
logs from Conviva (video views with transfer/latency/error metrics) and
eight summary-statistics views.  The production data is proprietary, so
we generate a synthetic activity log with the same shape — Zipfian users
and resources, error codes, long-tailed byte counts, a date axis — and
define the eight view shapes described in §12.6.2:

* V1  counts of error types by (errorType, resource, date)
* V2  bytes transferred by (resource, user bucket, date)
* V3  visit counts by an *expression of resource tags* and date
* V4  nested: per-user grouping, then per-(region, provider) statistics
* V5  nested: per-user grouping, then per-(region, provider) error counts
* V6  union of two resource subsets, then visit/byte aggregates
* V7  per-(resource, user, date) network statistics, many aggregates
* V8  per-(resource, date) visit statistics, many aggregates

Views are keyed and materialized like any other; updates are appended
log records (the remaining 20% of the trace in the paper).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.algebra.expressions import (
    AggSpec,
    Aggregate,
    BaseRel,
    Output,
    Project,
    Select,
    Union,
)
from repro.algebra.predicates import col
from repro.algebra.relation import Relation
from repro.algebra.schema import Schema
from repro.db.catalog import Catalog
from repro.db.database import Database
from repro.stats.zipf import ZipfGenerator

LOG = "activity_log"
ERROR_TYPES = ("NONE", "BUFFERING", "DNS", "TIMEOUT", "AUTH", "DECODE")
PROVIDERS = tuple(f"ISP_{i}" for i in range(8))
REGIONS = tuple(f"REGION_{i}" for i in range(6))

LOG_SCHEMA = Schema([
    "sessionId", "userId", "resourceId", "date", "bytes", "latency",
    "errorType", "provider", "region",
])


class ConvivaGenerator:
    """Synthetic user-activity log generator."""

    def __init__(
        self, n_users: int = 400, n_resources: int = 150, z: float = 1.5,
        seed: int = 7,
    ):
        self.n_users = n_users
        self.n_resources = n_resources
        self.z = z
        self.rng = np.random.default_rng(seed)
        self._next_session = 0

    def records(self, n: int, start_date: int = 0, date_span: int = 120) -> List[tuple]:
        """``n`` log records over the given date window."""
        rng = self.rng
        users = ZipfGenerator(self.n_users, self.z, rng).draw(n)
        resources = ZipfGenerator(self.n_resources, self.z, rng).draw(n)
        dates = start_date + rng.integers(0, date_span, n)
        byte_ranks = ZipfGenerator(5000, max(self.z, 1.0), rng).draw(n) + 1
        bytes_ = np.round(1e6 * (5000.0 / byte_ranks) ** 0.6, 0)
        latency = np.round(rng.gamma(2.0, 40.0, n), 1)
        err = rng.choice(
            len(ERROR_TYPES), size=n,
            p=[0.82, 0.06, 0.04, 0.04, 0.02, 0.02],
        )
        rows = []
        for i in range(n):
            sid = self._next_session
            self._next_session += 1
            uid = int(users[i])
            rows.append((
                sid, uid, int(resources[i]), int(dates[i]), float(bytes_[i]),
                float(latency[i]), ERROR_TYPES[err[i]],
                PROVIDERS[uid % len(PROVIDERS)], REGIONS[uid % len(REGIONS)],
            ))
        return rows

    def build(self, n_records: int = 20_000) -> Database:
        """Database holding the initial 80% of the trace."""
        db = Database()
        db.add_relation(Relation(
            LOG_SCHEMA, self.records(n_records), key=("sessionId",), name=LOG,
        ))
        return db

    def append_updates(self, db: Database, n_records: int,
                       start_date: int = 100, date_span: int = 30) -> int:
        """Queue fresh log records as deltas (recent dates — new data
        skews to the tail of the time axis, as in the real trace)."""
        db.insert(LOG, self.records(n_records, start_date, date_span))
        return n_records


# ----------------------------------------------------------------------
# The eight views of §12.6.2
# ----------------------------------------------------------------------
def _v1():
    return Aggregate(
        BaseRel(LOG), ["errorType", "resourceId", "date"],
        [AggSpec("errors", "count")],
    )


def _v2():
    return Aggregate(
        BaseRel(LOG), ["resourceId", "date"],
        [AggSpec("bytes_total", "sum", col("bytes")),
         AggSpec("visits", "count")],
    )


def _v3():
    tagged = Project(
        BaseRel(LOG),
        [Output("sessionId", col("sessionId")),
         Output("tag", col("resourceId") % 10),
         Output("date", col("date"))],
    )
    return Aggregate(tagged, ["tag", "date"], [AggSpec("visits", "count")])


def _v4():
    per_user = Aggregate(
        BaseRel(LOG), ["userId", "region", "provider"],
        [AggSpec("user_bytes", "sum", col("bytes")),
         AggSpec("user_visits", "count")],
    )
    return Aggregate(
        per_user, ["region", "provider"],
        [AggSpec("bytes_total", "sum", col("user_bytes")),
         AggSpec("active_users", "count")],
    )


def _v5():
    errors = Select(BaseRel(LOG), col("errorType") != "NONE")
    per_user = Aggregate(
        errors, ["userId", "region", "provider"],
        [AggSpec("user_errors", "count")],
    )
    return Aggregate(
        per_user, ["region", "provider"],
        [AggSpec("errors_total", "sum", col("user_errors"))],
    )


def _v6():
    popular = Select(BaseRel(LOG), col("resourceId") < 20)
    tail = Select(BaseRel(LOG), col("resourceId") >= 100)
    return Aggregate(
        Union(popular, tail), ["resourceId", "date"],
        [AggSpec("visits", "count"),
         AggSpec("bytes_total", "sum", col("bytes"))],
    )


def _v7():
    return Aggregate(
        BaseRel(LOG), ["resourceId", "userId", "date"],
        [AggSpec("visits", "count"),
         AggSpec("bytes_total", "sum", col("bytes")),
         AggSpec("avg_latency", "avg", col("latency"))],
    )


def _v8():
    return Aggregate(
        BaseRel(LOG), ["resourceId", "date"],
        [AggSpec("visits", "count"),
         AggSpec("bytes_total", "sum", col("bytes")),
         AggSpec("avg_bytes", "avg", col("bytes")),
         AggSpec("avg_latency", "avg", col("latency"))],
    )


CONVIVA_VIEW_BUILDERS: Dict[str, Callable] = {
    "V1": _v1, "V2": _v2, "V3": _v3, "V4": _v4,
    "V5": _v5, "V6": _v6, "V7": _v7, "V8": _v8,
}


def conviva_query_attrs(name: str) -> Tuple[List[str], List[str]]:
    """(predicate attrs, aggregate attrs) for the random query generator
    — the paper queries random time ranges or customer/resource subsets."""
    table = {
        "V1": (["date", "errorType"], ["errors"]),
        "V2": (["date", "resourceId"], ["bytes_total", "visits"]),
        "V3": (["date", "tag"], ["visits"]),
        "V4": (["region", "provider"], ["bytes_total", "active_users"]),
        "V5": (["region", "provider"], ["errors_total"]),
        "V6": (["date", "resourceId"], ["visits", "bytes_total"]),
        "V7": (["date", "resourceId", "userId"], ["bytes_total", "visits"]),
        "V8": (["date", "resourceId"], ["visits", "bytes_total"]),
    }
    return table[name]


def create_conviva_views(
    db: Database, names: List[str] = None, catalog: Catalog = None
) -> Dict[str, object]:
    """Materialize the requested Conviva views."""
    catalog = catalog or Catalog(db)
    names = names or list(CONVIVA_VIEW_BUILDERS)
    return {n: catalog.create_view(n, CONVIVA_VIEW_BUILDERS[n]()) for n in names}


def build_conviva_workload(
    n_records: int = 20_000, z: float = 1.5, seed: int = 7,
) -> Tuple[Database, Catalog, Dict[str, object], ConvivaGenerator]:
    """Generate the log and materialize all eight views."""
    gen = ConvivaGenerator(z=z, seed=seed)
    db = gen.build(n_records)
    catalog = Catalog(db)
    views = create_conviva_views(db, catalog=catalog)
    return db, catalog, views, gen
