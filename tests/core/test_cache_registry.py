"""The central cache registry and the toggles that drain through it."""

import pytest

from repro.caches import (
    cache_stats,
    clear_all_caches,
    invalidate_caches,
    register_cache,
    registered_caches,
)


# ---------------------------------------------------------------------------
# Registry unit behavior
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_register_and_drain_by_reason(self):
        drained = {"n": 0}
        register_cache(
            "test.unit.scratch",
            clear=lambda: drained.__setitem__("n", drained["n"] + 1),
            invalidate_on=("plan_epoch",),
        )
        try:
            names = invalidate_caches("plan_epoch")
            assert "test.unit.scratch" in names
            assert drained["n"] == 1
            # Not subscribed to hash_family: untouched by that reason.
            assert "test.unit.scratch" not in invalidate_caches("hash_family")
            assert drained["n"] == 1
            assert "test.unit.scratch" in registered_caches()
        finally:
            from repro import caches

            caches._REGISTRY.pop("test.unit.scratch", None)

    def test_unknown_reason_rejected(self):
        with pytest.raises(ValueError):
            invalidate_caches("no_such_reason")
        with pytest.raises(ValueError):
            register_cache(
                "test.unit.bad", clear=lambda: None, invalidate_on=("nope",)
            )

    def test_stats_expose_size_and_drains(self):
        store = {"k": 1}
        register_cache(
            "test.unit.sized",
            clear=store.clear,
            invalidate_on=("hash_family",),
            size=lambda: len(store),
            description="unit-test scratch cache",
        )
        try:
            stats = cache_stats()["test.unit.sized"]
            assert stats["size"] == 1
            assert stats["invalidate_on"] == ("hash_family",)
            invalidate_caches("hash_family")
            assert cache_stats()["test.unit.sized"]["drains"] >= 1
            assert store == {}
        finally:
            from repro import caches

            caches._REGISTRY.pop("test.unit.sized", None)

    def test_library_caches_register_at_import(self):
        import repro.algebra.compiler  # noqa: F401
        import repro.algebra.evaluator  # noqa: F401
        import repro.db.sharding  # noqa: F401
        import repro.distributed.minibatch  # noqa: F401

        names = set(registered_caches())
        assert {
            "algebra.evaluator.hash_memo",
            "algebra.compiler.plan_cache",
            "distributed.minibatch.calibration_cache",
            "db.sharding.partition_memo",
        } <= names

    def test_clear_all_drains_every_registration(self):
        drained = clear_all_caches()
        assert "algebra.evaluator.hash_memo" in drained
        assert "algebra.compiler.plan_cache" in drained


# ---------------------------------------------------------------------------
# Integration: the toggles drain through the registry
# ---------------------------------------------------------------------------


class TestToggleIntegration:
    @staticmethod
    def _active_family_name():
        from repro.stats.hashing import HASH_FAMILIES, get_hash_family

        active = get_hash_family()
        return next(k for k, v in HASH_FAMILIES.items() if v is active)

    def test_set_hash_family_drains_hash_memo_and_bumps_epoch(self):
        from repro.algebra.compiler import plan_epoch
        from repro.algebra.evaluator import _HASH_MEMO, hash_draw
        from repro.stats.hashing import set_hash_family

        restore = self._active_family_name()
        try:
            set_hash_family("sha1")
            hash_draw("k", 7)
            assert len(_HASH_MEMO) > 0
            before = plan_epoch()
            set_hash_family("linear")
            assert len(_HASH_MEMO) == 0
            assert plan_epoch() == before + 1
        finally:
            set_hash_family(restore)

    def test_reasserting_same_family_is_a_noop(self):
        from repro.algebra.compiler import plan_epoch
        from repro.stats.hashing import set_hash_family

        before = plan_epoch()
        set_hash_family(self._active_family_name())
        assert plan_epoch() == before

    def test_bump_plan_epoch_drains_plan_and_calibration_caches(self):
        from repro.algebra.compiler import _PLAN_CACHE, bump_plan_epoch
        from repro.distributed.minibatch import _CALIBRATION_CACHE

        _PLAN_CACHE["probe"] = object()
        _CALIBRATION_CACHE[("probe",)] = object()
        bump_plan_epoch()
        assert "probe" not in _PLAN_CACHE
        assert ("probe",) not in _CALIBRATION_CACHE

    def test_partition_generation_orphans_memos(self):
        from repro.algebra import Relation
        from repro.db.sharding import (
            invalidate_partition_memos,
            partition_relation,
        )

        rel = Relation(
            ("videoId", "count"),
            [(i % 4, float(i)) for i in range(16)],
        )
        first = partition_relation(rel, ("videoId",), 2)
        again = partition_relation(rel, ("videoId",), 2)
        assert [id(p) for p in first] == [id(p) for p in again]

        invalidate_partition_memos()
        fresh = partition_relation(rel, ("videoId",), 2)
        assert [id(p) for p in first] != [id(p) for p in fresh]
        for a, b in zip(first, fresh):
            assert a.rows == b.rows
