"""Columnar batches: the exchange format of the batch-native evaluator.

The SVC evaluator is row-oriented because the paper's algorithms are
defined over row lineage and per-row hashing — but the *hot loops*
(selection masks, η hashing, join build/probe, group-by reduction) are
embarrassingly data-parallel.  This module provides the columnar
execution backend:

* :class:`ColumnarRelation` — a lazy, cached column batch.  It can be
  *row-backed* (a view over an immutable
  :class:`~repro.algebra.relation.Relation`, columns extracted on first
  access), *provider-backed* (each column produced on demand by a
  closure — how operators chain batch-to-batch without rematerializing
  rows: a σ output gathers its parent's columns through the selection
  indices, a ⋈ output through the join's match indices), or
  *array-backed* (columns handed over eagerly).
* :func:`column_to_array` — value-faithful conversion of one column to a
  numpy array.  "Faithful" means ``array.tolist()`` round-trips every
  Python value unchanged: columns that numpy would silently coerce
  (``None`` → ``nan`` under older numpy, ``True`` → ``1`` next to ints,
  ``1`` → ``1.0`` next to floats, everything → ``str`` next to strings)
  fall back to object dtype instead.  This is the null-aware fallback
  that keeps :meth:`~repro.algebra.predicates.Predicate.mask` and
  :func:`group_ids` identical to the row path even over outer-join
  outputs whose padding drops columns to object dtype.
* :func:`group_ids` — dense group identifiers for a group-by key, in
  first-appearance order (exactly the order the row-at-a-time dict
  grouping produces), via ``np.unique`` when the key columns are
  integer/bool/string and a Python dict otherwise.
* :func:`grouped_starts` — the stable-sorted order and per-group start
  offsets that feed ``np.ufunc.reduceat``-style grouped reductions.
* :func:`factorize_key_codes` — dense integer key codes for a pair of
  batches over (possibly multi-column) key attributes: one ``np.unique``
  over the concatenated values per column pair, re-factorized for
  multi-column keys.  The vectorized hash join builds/probes on these
  codes and the columnar change-table merge matches stale-view rows to
  change rows with them — both share the same fallback triggers.
* :func:`scatter_column` / :func:`concat_columns` /
  :func:`object_array` — value-faithful column surgery: overwrite rows
  of a column at index positions, stitch two column fragments together,
  and lift a Python value list to an object array without numpy scalar
  boxing.  These are the assembly primitives of operators (⋈, Merge)
  whose outputs mix gathered and computed fragments.
* :func:`pack_column_buffers` / :func:`write_column_buffers` /
  :meth:`ColumnarRelation.from_buffer` — the flat-buffer exchange
  format of the shared-memory shard transport
  (:mod:`repro.distributed.transport`): a batch's columns lay out as
  contiguous, aligned numpy buffers inside one writable buffer (a
  ``multiprocessing.shared_memory`` block), described by a tuple of
  :class:`ColumnSpec` entries.  Columns that only exist as object
  arrays (``None``-bearing, mixed-type, big-int) cannot be shared as
  raw buffers and fall back to an embedded pickle of their Python
  values — the manifest marks them ``kind="pickle"`` so attach
  round-trips every value exactly.  Attached typed columns are
  zero-copy views over the shared block, marked read-only so no
  operator can scribble on memory other processes see.

The evaluator treats every columnar path as a *fast path with a row
fallback*: any value that does not vectorize cleanly (``None``-bearing
columns under arithmetic, opaque :class:`~repro.algebra.predicates.Func`
terms, exotic Python objects) drops back to the reference row loop, so
results are identical by construction.  Integer arithmetic that could
overflow an int64 is likewise routed back to the row path, where Python's
arbitrary-precision integers define the semantics.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

__all__ = [
    "ColumnSpec",
    "ColumnarRelation",
    "as_object_array",
    "column_to_array",
    "concat_column_parts",
    "concat_columns",
    "factorize_key_codes",
    "group_ids",
    "grouped_starts",
    "object_array",
    "pack_column_buffers",
    "scatter_column",
    "write_column_buffers",
]

#: dtype kinds that vectorize for arithmetic/comparison fast paths.
NUMERIC_KINDS = "biuf"

#: dtype kinds safe for exact group-key round-tripping (no int/float or
#: precision collapse): bool, signed/unsigned int, unicode, bytes.
GROUPABLE_KINDS = "biuUS"

#: Python value types whose round trip through a typed numpy array of the
#: matching kind is exact (``tolist`` restores an equal value of the same
#: Python type).
_FAITHFUL_TYPES = {
    "b": {bool},
    "i": {int},
    "u": {int},
    "f": {float},
    "U": {str},
    "S": {bytes},
}


def column_to_array(values: Sequence) -> np.ndarray:
    """One column as a 1-D numpy array, falling back to object dtype.

    The result is *value-faithful*: ``column_to_array(v).tolist() == v``
    with every element's Python type preserved.  ``np.asarray`` infers
    int64/float64/bool dtypes for uniform numeric columns, but silently
    coerces mixed ones — ``[True, 2]`` flattens to int64 (dropping the
    bool), ``[1, 2.5]`` to float64 (dropping the int), ``['', 0]``
    stringifies the int, and older numpy turns ``[None, 1.0]`` into
    ``[nan, 1.0]``.  Any such column — along with ragged, oversized-int,
    and numpy-scalar-bearing ones — becomes an object array instead, so
    every Python value round-trips unchanged.  Faithfulness is what lets
    provider-backed batches reconstruct rows, group keys, and η hash
    inputs that are bit-identical to the row path.
    """
    try:
        arr = np.asarray(values)
    except (ValueError, TypeError, OverflowError):
        arr = None
    if arr is not None and arr.ndim == 1:
        kind = arr.dtype.kind
        if kind == "O":
            return arr
        allowed = _FAITHFUL_TYPES.get(kind)
        # set(map(type, ...)) is the cheapest full-column type scan: one
        # C-level pass that also catches None (NoneType ∉ allowed) and
        # numpy scalars (np.int64 ∉ allowed).
        if allowed is not None and set(map(type, values)) <= allowed:
            return arr
    out = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        out[i] = v
    return out


def as_object_array(arr: np.ndarray) -> np.ndarray:
    """Copy ``arr`` to object dtype holding *Python* values.

    ``arr.astype(object)`` would box numpy scalars (``np.int64`` is not a
    Python ``int``, so η's key encoding and ``isinstance`` checks would
    diverge from the row path); going through ``tolist`` converts each
    element to its native Python type instead.
    """
    out = np.empty(len(arr), dtype=object)
    if len(arr):
        out[:] = arr.tolist() if arr.dtype != object else arr
    return out


class ColumnarRelation:
    """A cached, lazily-populated column batch.

    Three backings share one interface:

    * **row-backed** — ``ColumnarRelation(relation)``: columns are
      extracted from the relation's row tuples on first access.  Valid
      because relations are treated as immutable everywhere in the
      library (every update path builds a new ``Relation``).
    * **provider-backed** — :meth:`from_providers`: each column is built
      by a zero-argument closure when first requested.  Operators chain
      batches this way (gathers through selection/join indices) so a
      multi-operator plan only ever touches the columns it actually
      reads, and only once.
    * **array-backed** — :meth:`from_arrays`: columns handed over as
      ready numpy arrays (vectorized projection outputs, unpickled
      shard payloads).

    Construction is O(1) in all three cases; columns are cached after
    first materialization.  Batches may be shared between relations and
    across evaluate() calls — caches only ever grow, never mutate.
    """

    __slots__ = (
        "schema", "_rows", "_pycols", "_arrays", "_providers", "_nrows",
        "_owner",
    )

    def __init__(self, relation=None):
        self._pycols: dict = {}
        self._arrays: dict = {}
        self._providers = None
        self._owner = None
        if relation is not None:
            self.schema = relation.schema
            self._rows = relation.rows
            self._nrows = len(self._rows)
        else:
            self.schema = None
            self._rows = None
            self._nrows = 0

    @classmethod
    def from_providers(
        cls, schema, providers: Dict[str, Callable[[], np.ndarray]], nrows: int
    ) -> "ColumnarRelation":
        """A batch whose columns are built on demand by closures."""
        self = cls()
        self.schema = schema
        self._providers = providers
        self._nrows = int(nrows)
        return self

    @classmethod
    def from_arrays(
        cls, schema, arrays: Dict[str, np.ndarray], nrows: int
    ) -> "ColumnarRelation":
        """A batch over ready-made column arrays (one per schema column)."""
        self = cls()
        self.schema = schema
        self._arrays = dict(arrays)
        self._nrows = int(nrows)
        return self

    @classmethod
    def from_buffer(
        cls, schema, buf, specs: Sequence["ColumnSpec"], nrows: int,
        owner=None,
    ) -> "ColumnarRelation":
        """Attach a batch to a packed column buffer (zero-copy).

        ``buf`` is the writable buffer :func:`write_column_buffers`
        filled (typically ``SharedMemory.buf``); ``specs`` is the layout
        :func:`pack_column_buffers` produced.  Typed columns become
        numpy views straight over ``buf`` — no bytes are copied — and
        are marked read-only, because the underlying memory may be
        mapped by several processes at once.  ``kind="pickle"`` columns
        (the object-dtype fallback) are unpickled into object arrays,
        which is a copy by necessity.

        ``owner`` (e.g. the ``SharedMemory`` handle behind ``buf``) is
        pinned on the batch for the batch's lifetime.  This matters for
        soundness, not just hygiene: numpy does *not* hold the buffer
        exported after array creation, so an owner that gets
        garbage-collected (its ``__del__`` closes the mapping) while
        views still point into the memory would leave dangling pointers.
        Pinning the owner here means every batch — and every derived
        batch, whose providers capture this one — keeps the mapping
        alive, and the handle closes via refcounting exactly when the
        last user is gone.
        """
        arrays: Dict[str, np.ndarray] = {}
        for spec in specs:
            if spec.kind == "pickle":
                values = pickle.loads(
                    bytes(buf[spec.offset:spec.offset + spec.nbytes])
                )
                arrays[spec.name] = object_array(values)
            else:
                arr = np.ndarray(
                    (nrows,),
                    dtype=np.dtype(spec.dtype),
                    buffer=buf,
                    offset=spec.offset,
                )
                arr.flags.writeable = False
                arrays[spec.name] = arr
        self = cls.from_arrays(schema, arrays, nrows)
        self._owner = owner
        return self

    @property
    def nrows(self) -> int:
        """Number of rows in the batch."""
        return self._nrows

    def pycolumn(self, name: str) -> list:
        """One column as a plain Python list, in row order (cached).

        Row-backed batches extract straight from the row tuples; other
        backings convert the column array via ``tolist`` — exact, because
        :func:`column_to_array` guarantees value-faithful arrays.
        """
        col = self._pycols.get(name)
        if col is None:
            if self._rows is not None:
                i = self.schema.index(name)
                col = [row[i] for row in self._rows]
            else:
                col = self.array(name).tolist()
            self._pycols[name] = col
        return col

    def array(self, name: str) -> np.ndarray:
        """One column as a numpy array (cached; object dtype fallback).

        The intermediate Python list is *not* cached here — only callers
        that need Python values (η hashing, dict grouping) pay for a
        retained list via :meth:`pycolumn`, so array-only access does
        not double the column's resident memory.
        """
        arr = self._arrays.get(name)
        if arr is not None:
            return arr
        providers = self._providers
        if providers is not None:
            provider = providers.get(name)
            if provider is not None:
                arr = provider()
                # Cache first, then release the provider: the closure
                # captures the parent batches (a σ output holds its
                # child, a merge output the stale view and change
                # table), so keeping it would chain every maintenance
                # round's batch to the previous round's — an unbounded
                # leak for long-lived views.  Batches may be shared
                # across threads, so the release is race-tolerant: a
                # concurrent reader at worst re-runs the provider
                # (idempotent) — pop() never raises and the cache was
                # written before the provider disappeared.
                self._arrays[name] = arr
                providers.pop(name, None)
                if not providers:
                    self._providers = None
                return arr
        # No pending provider: cached concurrently, row-backed, or a
        # genuinely unknown column.
        arr = self._arrays.get(name)
        if arr is not None:
            return arr
        if self._rows is None:
            raise KeyError(f"batch has no column {name!r}")
        col = self._pycols.get(name)
        if col is None:
            i = self.schema.index(name)
            col = [row[i] for row in self._rows]
        arr = column_to_array(col)
        self._arrays[name] = arr
        return arr

    def arrays(self, names: Sequence[str]) -> list:
        """Arrays for several columns, in the given order."""
        return [self.array(n) for n in names]

    # ------------------------------------------------------------------
    # Batch-to-batch derivations (the operator chaining primitives)
    # ------------------------------------------------------------------
    def take(self, indices) -> "ColumnarRelation":
        """A batch gathering the given row positions, columns on demand.

        This is how σ and η outputs chain without rebuilding rows: the
        child batch plus an index vector *is* the output; each column is
        gathered (one numpy fancy-index) only if something reads it.
        """
        idx = np.asarray(indices, dtype=np.intp)

        def gather(name):
            def build():
                return self.array(name)[idx]

            return build

        providers = {name: gather(name) for name in self.schema.columns}
        return ColumnarRelation.from_providers(self.schema, providers, len(idx))

    def select_as(self, pairs: Sequence[tuple]) -> "ColumnarRelation":
        """A batch renaming/reordering columns: ``(out_name, src_name)``.

        Pass-through projection and rename chain through this — the
        underlying arrays are shared with the source batch, so a Π that
        drops or renames columns costs nothing until a column is read.
        """
        from repro.algebra.schema import Schema

        def alias(src):
            def build():
                return self.array(src)

            return build

        providers = {out: alias(src) for out, src in pairs}
        schema = Schema([out for out, _ in pairs])
        return ColumnarRelation.from_providers(schema, providers, self._nrows)

    def materialize_rows(self) -> list:
        """The batch as a list of row tuples (the evaluator-boundary
        conversion — the only place columns turn back into rows)."""
        if self._rows is not None:
            return list(self._rows)
        if not len(self.schema):
            return [()] * self._nrows
        cols = []
        for name in self.schema.columns:
            got = self._pycols.get(name)
            cols.append(got if got is not None else self.array(name).tolist())
        return list(zip(*cols))

    def __repr__(self) -> str:
        backing = (
            "rows"
            if self._rows is not None
            else ("providers" if self._providers is not None else "arrays")
        )
        return (
            f"<ColumnarRelation cols={list(self.schema.columns)} "
            f"rows={self.nrows} backing={backing} cached={sorted(self._arrays)}>"
        )


def _first_appearance(uniq, first, inv):
    """Remap ``np.unique`` output (sorted order) to first-appearance order."""
    perm = np.argsort(first, kind="stable")
    rank = np.empty(len(perm), dtype=np.intp)
    rank[perm] = np.arange(len(perm), dtype=np.intp)
    gid = rank[np.asarray(inv).reshape(-1)]
    return gid, uniq[perm]


def group_ids(cols: ColumnarRelation, names: Sequence[str]):
    """Dense group ids + group-key tuples for a group-by key.

    Returns ``(gid, group_keys)`` where ``gid[i]`` is the group of row
    ``i`` and ``group_keys[g]`` is the key tuple of group ``g``; groups
    are numbered in first-appearance (row) order, matching the dict
    grouping of the row-at-a-time path.  Because :func:`column_to_array`
    is value-faithful, a typed array here is guaranteed free of Python
    values that numpy would have coerced (``None``, stray bools among
    ints), so the ``np.unique`` path emits exactly the row path's keys;
    everything else — including ``None``-bearing columns — takes the
    exact dict fallback.
    """
    arrays = cols.arrays(names)
    if len(arrays) == 1 and arrays[0].dtype.kind in GROUPABLE_KINDS:
        uniq, first, inv = np.unique(
            arrays[0], return_index=True, return_inverse=True
        )
        gid, ordered = _first_appearance(uniq, first, inv)
        return gid, [(k,) for k in ordered.tolist()]
    kinds = {a.dtype.kind for a in arrays}
    if len(arrays) > 1 and len(kinds) == 1 and kinds <= set("biu"):
        # One kind only: np.stack on mixed bool/int columns would promote
        # bools to 0/1 and change the emitted group-key values.
        stacked = np.stack(arrays, axis=1)
        uniq, first, inv = np.unique(
            stacked, axis=0, return_index=True, return_inverse=True
        )
        gid, ordered = _first_appearance(uniq, first, inv)
        return gid, [tuple(r) for r in ordered.tolist()]
    # Exact fallback: Python values as dict keys, like the row path.
    pycols = [cols.pycolumn(n) for n in names]
    n = len(pycols[0])
    gid = np.empty(n, dtype=np.intp)
    mapping: dict = {}
    keys: list = []
    for i, key in enumerate(zip(*pycols)):
        g = mapping.get(key)
        if g is None:
            g = len(keys)
            mapping[key] = g
            keys.append(key)
        gid[i] = g
    return gid, keys


def grouped_starts(gid: np.ndarray, counts: np.ndarray):
    """Stable row order and reduceat start offsets for grouped reduction.

    Returns ``(order, starts)``: ``order`` sorts rows by group id while
    preserving row order within each group, and ``starts[g]`` is the
    offset of group ``g``'s first row in that order — the shape
    ``np.ufunc.reduceat`` wants.
    """
    order = np.argsort(gid, kind="stable")
    starts = np.zeros(len(counts), dtype=np.intp)
    np.cumsum(counts[:-1], out=starts[1:])
    return order, starts


def factorize_key_codes(abatch, bbatch, acols, bcols):
    """Dense integer key codes for two batches, or None to fall back.

    Each key column pair is factorized with one ``np.unique`` over the
    concatenated values of both batches; multi-column keys re-factorize
    the stacked per-column codes.  Returns ``(acodes, bcodes, n_keys)``
    where equal codes mean "these rows match on the key" — the building
    block of both the vectorized hash join and the columnar merge.

    Fallback conditions (the row path's Python ``dict`` defines the
    matching semantics): object-dtype columns (``None`` keys match
    row-wise via ``None == None``; the factorizer cannot see that),
    NaN-bearing float keys (``nan`` never equals itself row-wise but
    ``np.unique`` collapses NaNs), int/float pairs whose magnitudes
    reach 2**53 (float64 promotion loses int exactness), and any
    cross-kind pair numpy would coerce (int vs str, …).
    """
    from repro.algebra.predicates import _FLOAT_EXACT, _int_bound

    na, nb = abatch.nrows, bbatch.nrows
    code_cols = []
    for ac, bc in zip(acols, bcols):
        aa = abatch.array(ac)
        ba = bbatch.array(bc)
        ak, bk = aa.dtype.kind, ba.dtype.kind
        if ak == "O" or bk == "O":
            return None
        if ak in "biuf" and bk in "biuf":
            for arr, kind in ((aa, ak), (ba, bk)):
                if kind == "f" and arr.size and np.isnan(arr).any():
                    return None
            if "f" in (ak, bk) and (ak in "biu" or bk in "biu"):
                int_side = aa if ak in "biu" else ba
                if int_side.size and _int_bound(int_side) >= _FLOAT_EXACT:
                    return None
        elif not (ak == bk and ak in "US"):
            return None
        combo = np.concatenate([aa, ba])
        if combo.dtype.kind == "f" and "f" not in (ak, bk):
            # int64 vs uint64 promotes to float64; only exact when every
            # key fits in 2**53 (otherwise distinct keys could collide).
            if max(_int_bound(aa), _int_bound(ba)) >= _FLOAT_EXACT:
                return None
        _, inv = np.unique(combo, return_inverse=True)
        code_cols.append(np.asarray(inv).reshape(-1))
    if len(code_cols) > 1:
        stacked = np.column_stack(code_cols)
        _, inv = np.unique(stacked, axis=0, return_inverse=True)
        inv = np.asarray(inv).reshape(-1)
    else:
        inv = code_cols[0]
    n_keys = int(inv.max()) + 1 if len(inv) else 0
    return inv[:na], inv[na:], n_keys


def object_array(values: Sequence) -> np.ndarray:
    """A Python value list as an object array (no numpy scalar boxing).

    ``np.asarray(values, dtype=object)`` broadcasts sequence elements
    (a list of tuples becomes 2-D); filling an empty object array keeps
    every element — whatever its type — as one cell.
    """
    out = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        out[i] = v
    return out


def scatter_column(base: np.ndarray, idx: np.ndarray, values) -> np.ndarray:
    """A copy of column ``base`` with ``values`` written at rows ``idx``.

    ``values`` may be a numpy array or a list of Python values (the
    per-combiner row fallback of the columnar merge produces lists).
    Same-dtype scatters stay typed; anything else drops the whole column
    to object dtype holding Python values, so mixed results (a float
    delta replacing an int cell) round-trip exactly like the row path's.
    """
    if (
        isinstance(values, np.ndarray)
        and values.dtype == base.dtype
        and base.dtype.kind != "O"
    ):
        out = base.copy()
        out[idx] = values
        return out
    out = as_object_array(base)
    if isinstance(values, np.ndarray):
        values = values.tolist() if values.dtype != object else values
    out[idx] = object_array(list(values))
    return out


def concat_columns(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Concatenate two column fragments without corrupting values.

    Same-dtype fragments (and string pairs, where only the item size
    differs) concatenate directly; anything else goes through an object
    array of Python values — ``np.concatenate`` would happily promote
    int64+float64 to float64 and turn the int fragment's values into
    floats the row path never produced.
    """
    return concat_column_parts((a, b))


#: Column start offsets inside a packed buffer are aligned to this many
#: bytes so attached numpy views never straddle element boundaries.
BUFFER_ALIGN = 16


@dataclass(frozen=True)
class ColumnSpec:
    """Layout of one column inside a packed flat buffer.

    ``kind`` is ``"array"`` for a raw numpy buffer (``dtype`` carries the
    full dtype string, byte order included) or ``"pickle"`` for the
    object-column fallback, whose bytes are a pickle of the column's
    Python value list.
    """

    name: str
    kind: str
    dtype: Optional[str]
    offset: int
    nbytes: int


def pack_column_buffers(batch: ColumnarRelation):
    """Plan the flat-buffer export of a batch's columns.

    Returns ``(specs, total_nbytes, chunks)``: one :class:`ColumnSpec`
    per schema column, the buffer size that holds them all (aligned),
    and the per-column payloads — a contiguous numpy array for typed
    columns, pickled bytes for object columns.  The caller allocates a
    buffer of ``total_nbytes`` (usually a ``SharedMemory`` block) and
    fills it with :func:`write_column_buffers`; the specs alone are
    enough for :meth:`ColumnarRelation.from_buffer` to attach.

    Because :func:`column_to_array` is value-faithful, any column that
    reaches the ``"array"`` branch round-trips exactly through its raw
    buffer; everything numpy cannot represent losslessly is an object
    array here and takes the pickle fallback.
    """
    specs = []
    chunks = []
    offset = 0
    for name in batch.schema.columns:
        arr = batch.array(name)
        if arr.dtype.kind == "O":
            payload = pickle.dumps(arr.tolist(), protocol=pickle.HIGHEST_PROTOCOL)
            spec = ColumnSpec(name, "pickle", None, offset, len(payload))
            chunks.append(payload)
        else:
            arr = np.ascontiguousarray(arr)
            spec = ColumnSpec(name, "array", arr.dtype.str, offset, arr.nbytes)
            chunks.append(arr)
        specs.append(spec)
        offset += spec.nbytes
        offset += (-offset) % BUFFER_ALIGN
    return tuple(specs), offset, chunks


def write_column_buffers(buf, specs: Sequence[ColumnSpec], chunks) -> None:
    """Copy packed column payloads into ``buf`` at their spec offsets."""
    for spec, chunk in zip(specs, chunks):
        if spec.kind == "pickle":
            buf[spec.offset:spec.offset + spec.nbytes] = chunk
        elif spec.nbytes:
            dst = np.ndarray(
                chunk.shape, dtype=chunk.dtype, buffer=buf, offset=spec.offset
            )
            dst[:] = chunk


def concat_column_parts(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate many column fragments value-faithfully, in one pass.

    The multi-way form matters for sharded results: pairwise
    concatenation of k shard columns would re-copy the growing prefix
    k−1 times; this is one linear pass regardless of k.
    """
    if len(parts) == 1:
        return parts[0]
    first = parts[0].dtype
    if all(p.dtype == first for p in parts) or (
        first.kind in "US" and all(p.dtype.kind == first.kind for p in parts)
    ):
        return np.concatenate(parts)
    out = np.empty(sum(len(p) for p in parts), dtype=object)
    pos = 0
    for p in parts:
        if len(p):
            out[pos:pos + len(p)] = p.tolist() if p.dtype != object else p
        pos += len(p)
    return out
