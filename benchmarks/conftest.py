"""Shared benchmark fixtures.

Every bench regenerates one figure of the paper via the experiment
harness, times it with pytest-benchmark, prints the reproduced series,
and archives it under ``benchmarks/results/`` so the tables survive the
run (pytest captures stdout by default).

Besides the human-readable ``.txt`` tables, every benchmark also emits a
machine-readable ``results/<name>.json`` (:func:`write_json_result`)
carrying the measured metrics, the benchmark configuration, the current
commit, and a timestamp — so the perf trajectory can be tracked
PR-over-PR (CI uploads these files as artifacts).
"""

import datetime
import json
import pathlib
import subprocess

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _current_commit() -> str:
    """The current git commit hash, or 'unknown' outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def write_json_result(name: str, metrics: dict, config: dict | None = None) -> dict:
    """Persist one benchmark's machine-readable result file.

    Writes ``results/<name>.json`` with the measured ``metrics``, the
    benchmark ``config`` (workload sizes, modes), the current commit,
    and an ISO timestamp.  Returns the payload.  Values that are not
    JSON-native (numpy scalars, paths) are stringified rather than
    dropped.
    """
    payload = {
        "name": name,
        "commit": _current_commit(),
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "config": config or {},
        "metrics": metrics,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return payload


def best_time(setup, fn, repeats: int) -> float:
    """Best-of-N timing of ``fn(setup())``; setup runs outside the timer."""
    import time

    best = float("inf")
    for _ in range(repeats):
        arg = setup()
        t0 = time.perf_counter()
        fn(arg)
        best = min(best, time.perf_counter() - t0)
    return best


def same_rows(rows_a, rows_b, tol: float = 1e-9) -> bool:
    """Float-tolerant bag equality for cross-engine result comparison.

    Engines sum in different associations (~1e-15 relative differences),
    so float cells compare with a relative tolerance; everything else
    must match exactly.
    """
    if len(rows_a) != len(rows_b):
        return False
    for ra, rb in zip(sorted(rows_a), sorted(rows_b)):
        for x, y in zip(ra, rb):
            if isinstance(x, float) or isinstance(y, float):
                if abs(x - y) > tol * max(1.0, abs(x), abs(y)):
                    return False
            elif x != y:
                return False
    return True


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink benchmark workloads for CI smoke runs",
    )


@pytest.fixture
def quick(request):
    """True when the run should use a reduced CI-sized workload."""
    return request.config.getoption("--quick")


@pytest.fixture
def record_text():
    """Persist a free-form text result table and echo it to stdout."""

    def _record(name: str, table: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
        print("\n" + table)

    return _record


@pytest.fixture
def record_json():
    """Persist a machine-readable JSON result (see write_json_result)."""
    return write_json_result


@pytest.fixture
def record_result():
    """Persist an ExperimentResult (text table + JSON) and echo it."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        table = result.to_table()
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(table + "\n")
        write_json_result(
            result.experiment_id,
            {"rows": result.rows},
            {"title": result.title, "notes": result.notes},
        )
        print("\n" + table)
        return result

    return _record


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
