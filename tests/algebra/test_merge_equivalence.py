"""Columnar vs row ``Merge`` equivalence (property-style, hypothesis).

The key-factorized columnar merge must be invisible: for every combiner
mode (``add``, ``replace``, ``min``/``max``, ``ratio``), for
``drop_empty`` on and off, over duplicate and missing keys, all-delete
change tables, and keys that force the row fallback (NaN, ``None``,
mixed-type object columns), the columnar engine must produce *exactly*
the row engine's rows, in exactly the row engine's order.  Comparison is
by ``repr``, which distinguishes ``0`` from ``0.0`` and ``-0.0`` and
treats two NaNs as equal — stricter than ``==``.

A second group of tests runs the merge where it actually lives: inside
sharded change-table maintenance, checking shard counts 1/2/3/7 against
the single-shard reference row for row.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    GROUP_COUNT,
    AggSpec,
    Aggregate,
    BaseRel,
    Combiner,
    Join,
    Merge,
    Relation,
    Schema,
    col,
    evaluate,
    set_columnar_enabled,
)
from repro.db import Catalog, Database, maintain
from repro.distributed import set_shard_count

STALE_SCHEMA = Schema(["g", "tag", "cnt", "tot", "mean", GROUP_COUNT])
CHANGE_SCHEMA = Schema(["g", "tag", "cnt", "tot", GROUP_COUNT])


def both_engines(expr, leaves):
    """Evaluate ``expr`` under the columnar and the row engine."""
    old = set_columnar_enabled(True)
    try:
        fast = evaluate(expr, dict(leaves))
        fast_rows = list(fast.rows)
        set_columnar_enabled(False)
        slow = evaluate(expr, dict(leaves))
    finally:
        set_columnar_enabled(old)
    return (fast.schema, fast_rows), (slow.schema, list(slow.rows))


def assert_rows_identical(fast, slow):
    """Row-for-row, order-preserving, repr-exact equality."""
    fast_schema, fast_rows = fast
    slow_schema, slow_rows = slow
    assert fast_schema == slow_schema
    assert [tuple(map(repr, r)) for r in fast_rows] == [
        tuple(map(repr, r)) for r in slow_rows
    ]


def spja_combiners():
    return [
        Combiner("g", "group"),
        Combiner("cnt", "add"),
        Combiner("tot", "add"),
        Combiner(GROUP_COUNT, "add"),
        Combiner("mean", "ratio", ("tot", GROUP_COUNT)),
    ]


# Small key spaces force duplicate, matched, and change-only keys alike.
stale_rows = st.lists(
    st.tuples(
        st.integers(0, 8),
        st.sampled_from(["x", "y"]),
        st.integers(-5, 5),
        st.floats(-50, 50, allow_nan=False),
        st.floats(-50, 50, allow_nan=False),
        st.integers(0, 4),
    ),
    min_size=0,
    max_size=25,
)
change_rows = st.lists(
    st.tuples(
        st.integers(0, 12),
        st.sampled_from(["x", "y"]),
        st.integers(-5, 5),
        st.floats(-50, 50, allow_nan=False),
        st.integers(-4, 4),
    ),
    min_size=0,
    max_size=25,
)


class TestMergeEquivalenceProperties:
    @given(stale_rows, change_rows, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_add_ratio_single_key(self, srows, crows, drop):
        """sum/count/avg combiners over duplicate and missing int keys."""
        expr = Merge(
            BaseRel("S"), BaseRel("C"), ("g",), spja_combiners(), drop_empty=drop
        )
        leaves = {
            "S": Relation(STALE_SCHEMA, srows, name="S"),
            "C": Relation(CHANGE_SCHEMA, crows, name="C"),
        }
        fast, slow = both_engines(expr, leaves)
        assert_rows_identical(fast, slow)

    @given(stale_rows, change_rows, st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_multi_column_key(self, srows, crows, drop):
        """Composite (int, str) merge keys factorize via stacked codes."""
        combiners = spja_combiners() + [Combiner("tag", "group")]
        expr = Merge(
            BaseRel("S"), BaseRel("C"), ("g", "tag"), combiners, drop_empty=drop
        )
        leaves = {
            "S": Relation(STALE_SCHEMA, srows, name="S"),
            "C": Relation(CHANGE_SCHEMA, crows, name="C"),
        }
        fast, slow = both_engines(expr, leaves)
        assert_rows_identical(fast, slow)

    @given(stale_rows, change_rows)
    @settings(max_examples=40, deadline=None)
    def test_replace_min_max(self, srows, crows):
        """SPJ-style upsert combiners plus insert-only extrema."""
        combiners = [
            Combiner("g", "group"),
            Combiner("tag", "replace"),
            Combiner("cnt", "max"),
            Combiner("tot", "min"),
            Combiner(GROUP_COUNT, "add"),
        ]
        expr = Merge(BaseRel("S"), BaseRel("C"), ("g",), combiners)
        leaves = {
            "S": Relation(STALE_SCHEMA, srows, name="S"),
            "C": Relation(CHANGE_SCHEMA, crows, name="C"),
        }
        fast, slow = both_engines(expr, leaves)
        assert_rows_identical(fast, slow)

    @given(stale_rows)
    @settings(max_examples=40, deadline=None)
    def test_all_delete_change_table(self, srows):
        """A change table of pure deletions empties (some) groups."""
        # One deletion row per distinct stale key: exactly −grpcount, so
        # every matched group's support telescopes to zero and is
        # dropped; unmatched keys (−1 support) stay change-only inserts
        # that drop_empty removes too.
        seen = {}
        for g, tag, cnt, tot, mean, grp in srows:
            seen.setdefault(g, (tag, cnt, tot, grp))
        crows = [
            (g, tag, -cnt, -tot, -grp) for g, (tag, cnt, tot, grp) in seen.items()
        ] + [(99, "x", 0, 0.0, -1)]
        expr = Merge(BaseRel("S"), BaseRel("C"), ("g",), spja_combiners())
        leaves = {
            "S": Relation(STALE_SCHEMA, srows, name="S"),
            "C": Relation(CHANGE_SCHEMA, crows, name="C"),
        }
        fast, slow = both_engines(expr, leaves)
        assert_rows_identical(fast, slow)

    @given(stale_rows, change_rows)
    @settings(max_examples=30, deadline=None)
    def test_spj_implicit_support(self, srows, crows):
        """Stale side without ``__grpcount__``: implicit multiplicity 1."""
        stale_schema = Schema(["g", "tag", "cnt", "tot", "mean"])
        combiners = [
            Combiner("g", "group"),
            Combiner("tag", "replace"),
            Combiner("cnt", "replace"),
            Combiner("tot", "replace"),
        ]
        expr = Merge(BaseRel("S"), BaseRel("C"), ("g",), combiners)
        leaves = {
            "S": Relation(stale_schema, [r[:5] for r in srows], name="S"),
            "C": Relation(CHANGE_SCHEMA, crows, name="C"),
        }
        fast, slow = both_engines(expr, leaves)
        assert_rows_identical(fast, slow)


# Keys drawn from values that defeat factorization: NaN (np.unique
# collapses it, rows never match it), None and mixed int/str (object
# dtype), and ints beyond 2**53 next to floats.
fallback_key = st.one_of(
    st.integers(0, 5),
    st.floats(allow_nan=True, allow_infinity=False, width=32),
    st.none(),
    st.sampled_from(["a", "b"]),
    st.integers(2**53, 2**53 + 3),
)
fallback_stale = st.lists(
    st.tuples(
        fallback_key,
        st.sampled_from(["x", "y"]),
        st.one_of(st.none(), st.integers(-5, 5)),
        st.one_of(st.none(), st.floats(-50, 50, allow_nan=False)),
        st.floats(-50, 50, allow_nan=False),
        st.one_of(st.none(), st.integers(0, 4)),
    ),
    min_size=0,
    max_size=15,
)
fallback_change = st.lists(
    st.tuples(
        fallback_key,
        st.sampled_from(["x", "y"]),
        st.one_of(st.none(), st.integers(-5, 5)),
        st.one_of(st.none(), st.floats(-50, 50, allow_nan=False)),
        st.integers(-4, 4),
    ),
    min_size=0,
    max_size=15,
)


class TestMergeFallbacks:
    @given(fallback_stale, fallback_change, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_fallback_keys_and_none_values(self, srows, crows, drop):
        """NaN/None/mixed-type keys and None-bearing value columns.

        These force the whole-merge fallback (object or NaN key columns)
        or the per-combiner fallback (None among the combined values);
        either way the result must be the row engine's, exactly.
        """
        expr = Merge(
            BaseRel("S"), BaseRel("C"), ("g",), spja_combiners(), drop_empty=drop
        )
        leaves = {
            "S": Relation(STALE_SCHEMA, srows, name="S"),
            "C": Relation(CHANGE_SCHEMA, crows, name="C"),
        }
        fast, slow = both_engines(expr, leaves)
        assert_rows_identical(fast, slow)

    # One side int, the other float with exact zeros (±0.0) well
    # represented: `(x or 0)` collapses a falsy float to the *int* 0, so
    # these adds must match the row engine's value types exactly.
    int_vals = st.integers(-3, 3)
    zeroish_floats = st.sampled_from([-2.5, -0.0, 0.0, 1.0, 3.5])

    @given(
        st.lists(st.tuples(st.integers(0, 6), int_vals), max_size=12),
        st.lists(st.tuples(st.integers(0, 9), zeroish_floats), max_size=12),
        st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_mixed_int_float_add_with_zeros(self, srows, crows, flip):
        """int ⊕ float `add` columns where the float side carries zeros."""
        if flip:
            srows, crows = crows, srows
        schema = Schema(["g", "v"])
        expr = Merge(
            BaseRel("S"), BaseRel("C"), ("g",),
            [Combiner("g", "group"), Combiner("v", "add")],
        )
        leaves = {
            "S": Relation(schema, srows, name="S"),
            "C": Relation(schema, crows, name="C"),
        }
        fast, slow = both_engines(expr, leaves)
        assert_rows_identical(fast, slow)

    @given(
        st.lists(st.tuples(st.integers(0, 6), zeroish_floats), max_size=12),
        st.lists(st.tuples(st.integers(0, 9), zeroish_floats), max_size=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_float_float_add_with_zeros(self, srows, crows):
        """Both-zero float adds yield the row engine's int 0."""
        schema = Schema(["g", "v"])
        expr = Merge(
            BaseRel("S"), BaseRel("C"), ("g",),
            [Combiner("g", "group"), Combiner("v", "add")],
        )
        leaves = {
            "S": Relation(schema, srows, name="S"),
            "C": Relation(schema, crows, name="C"),
        }
        fast, slow = both_engines(expr, leaves)
        assert_rows_identical(fast, slow)

    @given(
        st.lists(st.tuples(st.integers(0, 6), st.integers(2**61, 2**64)),
                 min_size=0, max_size=10),
        st.lists(st.tuples(st.integers(0, 9), st.integers(2**61, 2**64)),
                 min_size=0, max_size=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_int64_overflow_add_falls_back(self, srows, crows):
        """Sums that could wrap int64 must use Python's big ints."""
        schema = Schema(["g", "big"])
        expr = Merge(
            BaseRel("S"), BaseRel("C"), ("g",),
            [Combiner("g", "group"), Combiner("big", "add")],
        )
        leaves = {
            "S": Relation(schema, srows, name="S"),
            "C": Relation(schema, crows, name="C"),
        }
        fast, slow = both_engines(expr, leaves)
        assert_rows_identical(fast, slow)

    def test_empty_sides(self):
        expr = Merge(BaseRel("S"), BaseRel("C"), ("g",), spja_combiners())
        empty_s = Relation(STALE_SCHEMA, [], name="S")
        empty_c = Relation(CHANGE_SCHEMA, [], name="C")
        full_s = Relation(
            STALE_SCHEMA, [(1, "x", 2, 4.0, 2.0, 2)], name="S"
        )
        full_c = Relation(CHANGE_SCHEMA, [(1, "x", 1, 2.0, 1)], name="C")
        for leaves in (
            {"S": empty_s, "C": empty_c},
            {"S": empty_s, "C": full_c},
            {"S": full_s, "C": empty_c},
        ):
            fast, slow = both_engines(expr, leaves)
            assert_rows_identical(fast, slow)


# ----------------------------------------------------------------------
# The merge where it lives: sharded change-table maintenance.
# ----------------------------------------------------------------------
def _build_db(rows):
    db = Database()
    db.add_relation(Relation(Schema(["sessionId", "videoId"]), rows,
                             key=("sessionId",), name="Log"))
    db.add_relation(Relation(
        Schema(["videoId", "ownerId"]),
        [(v, v % 2) for v in range(8)], key=("videoId",), name="Video",
    ))
    return db


def _spja_view(db):
    join = Join(BaseRel("Log"), BaseRel("Video"),
                on=[("videoId", "videoId")], foreign_key=True)
    return Catalog(db).create_view(
        "v", Aggregate(join, ["videoId", "ownerId"],
                       [AggSpec("visits", "count"),
                        AggSpec("ssum", "sum", col("sessionId")),
                        AggSpec("smean", "avg", col("sessionId"))]),
    )


maintenance_rows = st.lists(
    st.tuples(st.integers(0, 150), st.integers(0, 6)),
    min_size=0, max_size=25, unique_by=lambda r: r[0],
)
maintenance_inserts = st.lists(
    st.tuples(st.integers(200, 400), st.integers(0, 7)),
    min_size=0, max_size=10, unique_by=lambda r: r[0],
)


class TestMergeUnderSharding:
    @given(
        maintenance_rows,
        maintenance_inserts,
        st.lists(st.integers(0, 24), min_size=0, max_size=6, unique=True),
        st.sampled_from((1, 2, 3, 7)),
    )
    @settings(max_examples=25, deadline=None)
    def test_sharded_columnar_merge_equals_reference(
        self, rows, new_rows, delete_idx, shards
    ):
        """Shard counts 1/2/3/7: per-shard columnar merges concatenate
        to exactly the single-shard row-engine result."""
        results = []
        for count, columnar in ((1, False), (shards, True)):
            db = _build_db(rows)
            view = _spja_view(db)
            if new_rows:
                db.insert("Log", new_rows)
            base = db.relation("Log")
            picks = [base.rows[i] for i in delete_idx if i < len(base.rows)]
            if picks:
                db.delete("Log", list(dict.fromkeys(picks)))
            old_columnar = set_columnar_enabled(columnar)
            set_shard_count(count, backend="serial")
            try:
                maintained = maintain(view)
                results.append(
                    sorted(tuple(map(repr, r)) for r in maintained.rows)
                )
            finally:
                set_shard_count(1)
                set_columnar_enabled(old_columnar)
        assert results[0] == results[1]
