"""Central registry of the engine's module-level caches.

Every long-lived memo in the library — the η hash-draw memo, the
compiled-plan cache, the mini-batch calibration cache, the per-relation
partition memo family — must stay consistent with the *engine
configuration*: the active hash family and the plan epoch (which every
semantics-changing toggle bumps).  Before this registry each cache
wired its own invalidation by hand, and three separate PRs shipped a
bugfix for a memo that missed one path (family-unaware hash memo,
epoch-unaware calibrations, stale shard-plan memo).

The registry makes the contract explicit and machine-checkable:

* every module-level cache calls :func:`register_cache` at import time,
  naming the invalidation *reasons* it subscribes to
  (``"hash_family"``, ``"plan_epoch"``, or none for self-invalidating
  epoch-keyed memos);
* the toggle paths call :func:`invalidate_caches` with the reason
  instead of reaching into other modules' cache dicts;
* ``repro.analysis`` rule **REP001** statically rejects any new
  module-level ``*_CACHE`` / ``*_MEMO`` container that is not
  registered here.

Only caches from *imported* modules are registered — invalidating a
reason before a cache's module is imported is trivially correct
(there is nothing to drain yet).

This module imports nothing from the rest of the library, so any
module may register at import time without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "RegisteredCache",
    "cache_stats",
    "clear_all_caches",
    "invalidate_caches",
    "register_cache",
    "registered_caches",
]

#: Invalidation reasons the registry understands.  ``hash_family`` fires
#: on :func:`repro.stats.hashing.set_hash_family`; ``plan_epoch`` fires
#: on every :func:`repro.algebra.compiler.bump_plan_epoch` (i.e. every
#: semantics- or layout-changing toggle).
KNOWN_REASONS: Tuple[str, ...] = ("hash_family", "plan_epoch")


@dataclass(frozen=True)
class RegisteredCache:
    """One module-level cache and how it is kept consistent."""

    #: Dotted, library-unique name (``"algebra.evaluator.hash_memo"``).
    name: str
    #: Drops every entry; must be idempotent.
    clear: Callable[[], None]
    #: Reasons that drain this cache (subset of :data:`KNOWN_REASONS`).
    #: Empty means the cache self-invalidates (e.g. epoch-keyed entries)
    #: and is registered for inventory and :func:`clear_all_caches` only.
    invalidate_on: Tuple[str, ...] = ()
    #: Optional entry counter for :func:`cache_stats`.
    size: Optional[Callable[[], int]] = None
    #: One-line description of what the cache memoizes.
    description: str = ""
    #: Times this cache has been drained through the registry.
    _drains: list = field(default_factory=lambda: [0], repr=False)


_REGISTRY: Dict[str, RegisteredCache] = {}


def register_cache(
    name: str,
    *,
    clear: Callable[[], None],
    invalidate_on: Tuple[str, ...] = (),
    size: Optional[Callable[[], int]] = None,
    description: str = "",
) -> RegisteredCache:
    """Register one module-level cache; returns the registry entry.

    Re-registering the same name replaces the entry (modules may be
    reloaded under test runners); unknown invalidation reasons are a
    programming error and raise immediately.
    """
    for reason in invalidate_on:
        if reason not in KNOWN_REASONS:
            raise ValueError(
                f"unknown cache-invalidation reason {reason!r} for "
                f"{name!r}; known: {KNOWN_REASONS}"
            )
    entry = RegisteredCache(
        name=name,
        clear=clear,
        invalidate_on=tuple(invalidate_on),
        size=size,
        description=description,
    )
    _REGISTRY[name] = entry
    return entry


def registered_caches() -> Dict[str, RegisteredCache]:
    """Snapshot of the current registrations (name -> entry)."""
    return dict(_REGISTRY)


def invalidate_caches(reason: str) -> Tuple[str, ...]:
    """Drain every cache subscribed to ``reason``; returns their names.

    The toggle paths call this instead of clearing other modules' dicts
    directly — draining is centralized, so a cache added anywhere in the
    library participates in invalidation by registering, not by editing
    every toggle.
    """
    if reason not in KNOWN_REASONS:
        raise ValueError(
            f"unknown cache-invalidation reason {reason!r}; "
            f"known: {KNOWN_REASONS}"
        )
    drained = []
    for entry in list(_REGISTRY.values()):
        if reason in entry.invalidate_on:
            entry.clear()
            entry._drains[0] += 1
            drained.append(entry.name)
    return tuple(drained)


def clear_all_caches() -> Tuple[str, ...]:
    """Drain every registered cache regardless of reason (tests, memory
    pressure); returns the drained names."""
    drained = []
    for entry in list(_REGISTRY.values()):
        entry.clear()
        entry._drains[0] += 1
        drained.append(entry.name)
    return tuple(drained)


def cache_stats() -> Dict[str, Dict[str, object]]:
    """Per-cache introspection: size (when countable), drain count,
    subscribed reasons.  Used by tests and operator tooling."""
    return {
        entry.name: {
            "size": entry.size() if entry.size is not None else None,
            "drains": entry._drains[0],
            "invalidate_on": entry.invalidate_on,
            "description": entry.description,
        }
        for entry in _REGISTRY.values()
    }
