"""Tests for the CLI runner, the error hierarchy, and misc utilities."""

import pytest

from repro.errors import (
    EstimationError,
    EvaluationError,
    KeyDerivationError,
    MaintenanceError,
    PushdownError,
    ReproError,
    SchemaError,
    WorkloadError,
)
from repro.experiments.__main__ import _parse_value, main


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        SchemaError, KeyDerivationError, EvaluationError, PushdownError,
        MaintenanceError, EstimationError, WorkloadError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestCLI:
    def test_help_lists_experiments(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "fig16" in out

    def test_no_args_shows_help(self, capsys):
        assert main([]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["figNaN"]) == 2

    def test_runs_model_experiment(self, capsys):
        assert main(["fig14b"]) == 0
        out = capsys.readouterr().out
        assert "fig14b" in out

    def test_kwargs_parsed(self, capsys):
        assert main(["fig16", "seconds=30"]) == 0
        assert "fig16" in capsys.readouterr().out

    def test_parse_value(self):
        assert _parse_value("3") == 3
        assert _parse_value("0.5") == 0.5
        assert _parse_value("V2") == "V2"


class TestVersionAndExports:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_public_api_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None or name == "__version__"

    def test_subpackage_alls_resolve(self):
        import repro.algebra
        import repro.core
        import repro.db
        import repro.distributed
        import repro.workloads

        for mod in (repro.algebra, repro.core, repro.db, repro.distributed,
                    repro.workloads):
            for name in mod.__all__:
                assert getattr(mod, name, None) is not None, (mod, name)
