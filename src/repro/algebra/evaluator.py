"""Expression evaluation.

:func:`evaluate` executes an expression tree bottom-up against a leaf
resolver (mapping relation name -> :class:`Relation`) and returns a new
:class:`Relation` whose primary key is derived per Def 2.

Implementation notes
--------------------
* Equality joins are hash joins (build on the right input), with an
  empty-input fast path for inner joins.
* Outer joins pad the missing side with ``None``; equality columns that
  share a name on both sides collapse to a single output column which
  always carries the key value regardless of which side matched.
* The η operator filters rows whose key hash (``repro.stats.hashing``)
  falls below the sampling ratio; hash draws are memoized globally since
  they are pure in (key values, seed).
* Shared subtree objects are evaluated once per :func:`evaluate` call
  (maintenance strategies deliberately share the fresh-version subtrees
  across change-table terms).
* :class:`Merge` implements the change-table merge: a full outer equality
  join on the view key followed by per-column combination, with emptied
  groups (support count driven to zero or below) removed — exactly the
  Π(S ⟗ change) maintenance step of paper Ex. 1.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.aggregates import get_aggregate
from repro.algebra.expressions import (
    Aggregate,
    BaseRel,
    Difference,
    Expr,
    Hash,
    Intersect,
    Join,
    Merge,
    Project,
    Select,
    Union,
)
from repro.algebra.keys import derive_key
from repro.algebra.relation import Relation
from repro.algebra.schema import Schema
from repro.errors import EvaluationError, KeyDerivationError, SchemaError
from repro.stats.hashing import unit_hash

#: Hidden column carrying the group support count in aggregate views and
#: the net multiplicity in change tables.  Prefixed so user queries never
#: collide with it.
GROUP_COUNT = "__grpcount__"

# Hash values are pure functions of (key values, seed); maintenance and
# cleaning re-hash the same keys every period, so memoize globally.  The
# memo is cleared when the hash family changes (see clear_hash_memo).
_HASH_MEMO: dict = {}


def clear_hash_memo() -> None:
    """Drop cached hash draws (call after set_hash_family)."""
    _HASH_MEMO.clear()


def hash_draw(values: tuple, seed: int) -> float:
    """Memoized uniform draw in [0,1) for a key tuple under ``seed``."""
    key = (values, seed)
    got = _HASH_MEMO.get(key)
    if got is None:
        got = unit_hash(values, seed)
        _HASH_MEMO[key] = got
    return got


def evaluate(expr: Expr, leaves: Mapping) -> Relation:
    """Evaluate ``expr`` against ``leaves`` and return a keyed Relation."""
    rel = _eval(expr, leaves, {})
    try:
        rel.key = derive_key(expr, leaves)
    except KeyDerivationError:
        rel.key = None
    return rel


def _eval(expr: Expr, leaves: Mapping, memo: dict) -> Relation:
    """Evaluate with per-call memoization on node identity.

    Maintenance strategies share subtree objects (e.g. the fresh version
    of a base relation appears in several change-table terms); evaluating
    each shared node once makes the change-table cost proportional to the
    delta size rather than the term count.
    """
    key = id(expr)
    got = memo.get(key)
    if got is None:
        got = _eval_inner(expr, leaves, memo)
        memo[key] = got
    return got


def _eval_inner(expr: Expr, leaves: Mapping, memo: dict) -> Relation:
    if isinstance(expr, BaseRel):
        try:
            rel = leaves[expr.name]
        except KeyError:
            raise EvaluationError(f"unknown base relation {expr.name!r}") from None
        return Relation(rel.schema, rel.rows, key=rel.key, name=expr.name)
    if isinstance(expr, Select):
        fast = _indexed_membership_select(expr, leaves)
        if fast is not None:
            return fast
        child = _eval(expr.child, leaves, memo)
        pred = expr.predicate.bind(child.schema)
        return Relation(child.schema, [r for r in child.rows if pred(r)])
    if isinstance(expr, Project):
        child = _eval(expr.child, leaves, memo)
        bound = [(o.name, o.term.bind(child.schema)) for o in expr.outputs]
        schema = Schema([name for name, _ in bound])
        fns = [fn for _, fn in bound]
        rows = [tuple(fn(row) for fn in fns) for row in child.rows]
        return Relation(schema, rows)
    if isinstance(expr, Join):
        return _eval_join(expr, leaves, memo)
    if isinstance(expr, Aggregate):
        return _eval_aggregate(expr, leaves, memo)
    if isinstance(expr, Union):
        left, right = _eval_setop_inputs(expr, leaves, memo)
        if not right.rows:
            return Relation(left.schema, list(left.rows))
        seen = set(left.rows)
        rows = list(left.rows) + [r for r in right.rows if r not in seen]
        return Relation(left.schema, rows)
    if isinstance(expr, Intersect):
        left, right = _eval_setop_inputs(expr, leaves, memo)
        rset = set(right.rows)
        rows = [r for r in dict.fromkeys(left.rows) if r in rset]
        return Relation(left.schema, rows)
    if isinstance(expr, Difference):
        left, right = _eval_setop_inputs(expr, leaves, memo)
        if not right.rows:
            return Relation(left.schema, list(left.rows))
        rset = set(right.rows)
        rows = [r for r in dict.fromkeys(left.rows) if r not in rset]
        return Relation(left.schema, rows)
    if isinstance(expr, Hash):
        # Hash samples of named leaves are cached on the leaf relation —
        # the in-memory analogue of a hash index over the sampling key
        # (relations are immutable, so the cache cannot go stale).
        cache = None
        cache_key = None
        if isinstance(expr.child, BaseRel):
            leaf = leaves.get(expr.child.name) if hasattr(leaves, "get") else None
            if leaf is not None:
                cache = leaf.sample_cache()
                cache_key = (expr.attrs, expr.ratio, expr.seed)
                hit = cache.get(cache_key)
                if hit is not None:
                    return Relation(leaf.schema, hit, key=leaf.key)
        child = _eval(expr.child, leaves, memo)
        idx = child.schema.indexes(expr.attrs)
        ratio, seed = expr.ratio, expr.seed
        rows = [
            row
            for row in child.rows
            if hash_draw(tuple(row[i] for i in idx), seed) < ratio
        ]
        if cache is not None:
            cache[cache_key] = rows
        return Relation(child.schema, rows, key=child.key)
    if isinstance(expr, Merge):
        return _eval_merge(expr, leaves, memo)
    raise EvaluationError(f"cannot evaluate {type(expr).__name__}")


def _indexed_membership_select(expr: Select, leaves) -> Relation:
    """Fast path: σ_{col ∈ K}(BaseRel) through a cached value index.

    Key-set pulls (outlier-index materialization, §6.2) select a small
    number of key values from a base relation; a database would serve
    them from a B-tree.  We cache a value→rows index on the (immutable)
    leaf relation so the selection costs O(|K| + output) instead of a
    full scan.
    """
    from repro.algebra.predicates import Col, IsIn

    pred = expr.predicate
    if not (isinstance(expr.child, BaseRel) and isinstance(pred, IsIn)
            and isinstance(pred.term, Col)):
        return None
    leaf = leaves.get(expr.child.name) if hasattr(leaves, "get") else None
    if leaf is None:
        return None
    cache = leaf.sample_cache()
    cache_key = ("__valindex__", pred.term.name)
    index = cache.get(cache_key)
    if index is None:
        pos = leaf.schema.index(pred.term.name)
        index = {}
        for row in leaf.rows:
            index.setdefault(row[pos], []).append(row)
        cache[cache_key] = index
    rows = []
    for value in pred.values:
        rows.extend(index.get(value, ()))
    return Relation(leaf.schema, rows, key=leaf.key)


def _eval_setop_inputs(expr, leaves, memo):
    left = _eval(expr.left, leaves, memo)
    right = _eval(expr.right, leaves, memo)
    if left.schema != right.schema:
        raise SchemaError(
            f"set operation requires identical schemas: "
            f"{left.schema!r} vs {right.schema!r}"
        )
    return left, right


def _eval_join(expr: Join, leaves, memo) -> Relation:
    left = _eval(expr.left, leaves, memo)
    right = _eval(expr.right, leaves, memo)
    lcols = expr.left_on()
    rcols = expr.right_on()
    lidx = left.schema.indexes(lcols) if lcols else ()
    ridx = right.schema.indexes(rcols) if rcols else ()

    collapsed = [r for l, r in expr.on if l == r]
    kept_right = [c for c in right.schema.columns if c not in collapsed]
    out_schema = left.schema.concat(right.schema, drop_right=collapsed)
    kept_ridx = right.schema.indexes(kept_right)
    left_width = len(left.schema)

    if expr.how == "inner" and (not left.rows or not right.rows):
        return Relation(out_schema, [])

    # Positions in the output where collapsed equality columns live, paired
    # with the right-side source index — used to fill key values for rows
    # that only matched on the right (right/full outer joins).
    collapse_fill = []
    for l, r in expr.on:
        if l == r:
            collapse_fill.append((left.schema.index(l), right.schema.index(r)))

    theta = expr.theta.bind(out_schema) if expr.theta is not None else None

    rows = []
    matched_right = set()
    if lcols:
        build = {}
        for j, rrow in enumerate(right.rows):
            build.setdefault(tuple(rrow[i] for i in ridx), []).append(j)
        right_rows = right.rows
        pad = (None,) * len(kept_right)
        for lrow in left.rows:
            key = tuple(lrow[i] for i in lidx)
            hit = False
            for j in build.get(key, ()):
                out = lrow + tuple(right_rows[j][i] for i in kept_ridx)
                if theta is None or theta(out):
                    rows.append(out)
                    matched_right.add(j)
                    hit = True
            if not hit and expr.how in ("left", "full"):
                rows.append(lrow + pad)
    else:
        # Pure theta join: nested loop.
        pad = (None,) * len(kept_right)
        for lrow in left.rows:
            hit = False
            for j, rrow in enumerate(right.rows):
                out = lrow + tuple(rrow[i] for i in kept_ridx)
                if theta is None or theta(out):
                    rows.append(out)
                    matched_right.add(j)
                    hit = True
            if not hit and expr.how in ("left", "full"):
                rows.append(lrow + pad)
    if expr.how in ("right", "full"):
        pad_left = [None] * left_width
        for j, rrow in enumerate(right.rows):
            if j in matched_right:
                continue
            out = list(pad_left)
            for out_pos, src_idx in collapse_fill:
                out[out_pos] = rrow[src_idx]
            rows.append(tuple(out) + tuple(rrow[i] for i in kept_ridx))
    return Relation(out_schema, rows)


def _eval_aggregate(expr: Aggregate, leaves, memo) -> Relation:
    child = _eval(expr.child, leaves, memo)
    gidx = child.schema.indexes(expr.group_by)
    groups = {}
    for row in child.rows:
        groups.setdefault(tuple(row[i] for i in gidx), []).append(row)
    specs = []
    for a in expr.aggs:
        fn = get_aggregate(a.func)
        term = a.term.bind(child.schema) if a.term is not None else None
        specs.append((fn, term))
    out_schema = Schema(expr.group_by + tuple(a.name for a in expr.aggs))
    rows = []
    if not groups and not expr.group_by and expr.aggs:
        # Global aggregate over an empty input still yields one row.
        groups = {(): []}
    for gkey, grows in groups.items():
        vals = []
        for fn, term in specs:
            if term is None:
                vals.append(fn.compute(grows))
            else:
                vals.append(fn.compute([term(r) for r in grows]))
        rows.append(gkey + tuple(vals))
    return Relation(out_schema, rows)


def _eval_merge(expr: Merge, leaves, memo) -> Relation:
    stale = _eval(expr.stale, leaves, memo)
    change = _eval(expr.change, leaves, memo)
    out_schema = stale.schema
    key_idx_stale = stale.schema.indexes(expr.key)
    key_idx_change = change.schema.indexes(expr.key)

    change_by_key = {}
    for row in change.rows:
        change_by_key[tuple(row[i] for i in key_idx_change)] = row

    has_explicit_count = GROUP_COUNT in stale.schema
    grp_idx_change = (
        change.schema.index(GROUP_COUNT) if GROUP_COUNT in change.schema else None
    )

    # Resolve combiner plans: (out position, mode, change position).
    plans = []
    ratio_plans = []
    for comb in expr.combiners:
        out_pos = stale.schema.index(comb.column)
        if comb.mode == "group":
            continue
        if comb.mode == "ratio":
            num_pos = stale.schema.index(comb.args[0])
            den_pos = stale.schema.index(comb.args[1])
            ratio_plans.append((out_pos, num_pos, den_pos))
            continue
        change_pos = change.schema.index(comb.column)
        plans.append((out_pos, comb.mode, change_pos))

    def combine_row(old_row, change_row):
        out = list(old_row)
        for out_pos, mode, change_pos in plans:
            delta = change_row[change_pos]
            old = out[out_pos]
            if mode == "add":
                out[out_pos] = (old or 0) + (delta or 0)
            elif mode == "replace":
                out[out_pos] = delta if delta is not None else old
            elif mode == "min":
                if delta is not None:
                    out[out_pos] = delta if old is None else min(old, delta)
            elif mode == "max":
                if delta is not None:
                    out[out_pos] = delta if old is None else max(old, delta)
        for out_pos, num_pos, den_pos in ratio_plans:
            den = out[den_pos]
            out[out_pos] = (out[num_pos] / den) if den else float("nan")
        return tuple(out)

    def insert_row(change_row):
        # A missing row: synthesize a stale-side identity row, then combine.
        old = [None] * len(out_schema)
        for s_i, c_i in zip(key_idx_stale, key_idx_change):
            old[s_i] = change_row[c_i]
        return combine_row(tuple(old), change_row)

    grp_idx_stale = stale.schema.index(GROUP_COUNT) if has_explicit_count else None
    drop = expr.drop_empty

    rows = []
    seen = set()
    for row in stale.rows:
        key = tuple(row[i] for i in key_idx_stale)
        change_row = change_by_key.get(key)
        if change_row is None:
            rows.append(row)
            continue
        seen.add(key)
        merged = combine_row(row, change_row)
        if not drop:
            rows.append(merged)
            continue
        if has_explicit_count:
            support = merged[grp_idx_stale]
        elif grp_idx_change is not None:
            # SPJ views: stale rows have implicit multiplicity one.
            support = 1 + (change_row[grp_idx_change] or 0)
        else:
            support = 1
        if support is None or support > 0:
            rows.append(merged)
    for key, change_row in change_by_key.items():
        if key in seen:
            continue
        merged = insert_row(change_row)
        if not drop:
            rows.append(merged)
            continue
        if has_explicit_count:
            support = merged[grp_idx_stale]
        elif grp_idx_change is not None:
            support = change_row[grp_idx_change] or 0
        else:
            support = 1
        if support is None or support > 0:
            rows.append(merged)
    return Relation(out_schema, rows, key=expr.key)
