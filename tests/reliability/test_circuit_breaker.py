"""Unit tests for the health-probed circuit breaker (fake clock)."""

import pytest

from repro.reliability import CircuitBreaker


@pytest.fixture
def clocked():
    """A breaker driven entirely by a controllable clock."""
    now = [1000.0]
    breaker = CircuitBreaker(
        "test", failure_threshold=2, cooldown_s=10.0,
        cooldown_factor=2.0, max_cooldown_s=60.0,
        clock=lambda: now[0],
    )
    return breaker, now


def test_starts_closed_and_allows(clocked):
    breaker, _ = clocked
    assert breaker.state == "closed"
    assert breaker.allow()
    assert breaker.describe() == ""


def test_opens_at_threshold_not_before(clocked):
    breaker, _ = clocked
    breaker.record_failure("pool_broken", "worker died")
    assert breaker.state == "closed"
    assert breaker.allow()
    breaker.record_failure("pool_broken", "worker died again")
    assert breaker.state == "open"
    assert not breaker.allow()
    assert breaker.open_count == 1
    assert "breaker open" in breaker.describe()
    assert "pool_broken" in breaker.describe()


def test_success_resets_consecutive_count(clocked):
    breaker, _ = clocked
    breaker.record_failure("x")
    breaker.record_success()
    breaker.record_failure("x")
    assert breaker.state == "closed"  # never two in a row


def test_half_open_admits_exactly_one_probe(clocked):
    breaker, now = clocked
    breaker.record_failure("x")
    breaker.record_failure("x")
    assert not breaker.allow()
    now[0] += 10.0 + 0.001
    assert breaker.state == "half_open"
    assert breaker.allow()       # the single probe
    assert not breaker.allow()   # everyone else still blocked
    assert breaker.state == "half_open"


def test_probe_success_closes_and_resets_cooldown(clocked):
    breaker, now = clocked
    breaker.record_failure("x")
    breaker.record_failure("x")
    now[0] += 11.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.cooldown_s == 10.0
    assert breaker.recovered_count == 1
    assert breaker.allow()
    assert breaker.describe() == ""


def test_failed_probe_escalates_cooldown_capped(clocked):
    breaker, now = clocked
    breaker.record_failure("x")
    breaker.record_failure("x")
    cooldowns = []
    for _ in range(4):
        now[0] += breaker.cooldown_s + 0.001
        assert breaker.allow()
        breaker.record_failure("still down")
        assert breaker.state == "open"
        cooldowns.append(breaker.cooldown_s)
    assert cooldowns == [20.0, 40.0, 60.0, 60.0]  # x2, capped at max
    # Recovery after escalation still resets to the base window.
    now[0] += 60.0 + 0.001
    assert breaker.allow()
    breaker.record_success()
    assert breaker.cooldown_s == 10.0


def test_open_window_blocks_until_cooldown(clocked):
    breaker, now = clocked
    breaker.record_failure("x")
    breaker.record_failure("x")
    now[0] += 9.0
    assert breaker.state == "open"
    assert not breaker.allow()
    now[0] += 1.5
    assert breaker.state == "half_open"


def test_reset_clears_state_but_keeps_lifetime_counters(clocked):
    breaker, _ = clocked
    breaker.record_failure("x")
    breaker.record_failure("x")
    breaker.reset()
    assert breaker.state == "closed"
    assert breaker.describe() == ""
    assert breaker.open_count == 1  # lifetime telemetry survives reset
    breaker.record_failure("x")
    assert breaker.state == "closed"  # consecutive count was cleared


def test_threshold_one_opens_immediately():
    breaker = CircuitBreaker("one-strike", failure_threshold=1,
                             cooldown_s=5.0)
    breaker.record_failure("boom")
    assert breaker.state == "open"
    assert not breaker.allow()
