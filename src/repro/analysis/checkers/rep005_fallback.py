"""REP005: columnar fast paths run behind the fallback-guard dispatch.

Every columnar fast path (``_try_*`` helpers and the private
``_*_columnar`` operator kernels) returns ``None`` when a value does
not vectorize cleanly, and the caller *must* check for that and fall
back to the reference row path — that per-operator bail-out is the
whole equivalence argument of the columnar engine.  Calling a fast
path and using its result unconditionally turns "abandon the fast
path" into a crash (or worse, a silent ``None`` row set).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List

from repro.analysis.context import AnyFunction, ModuleContext, call_name
from repro.analysis.findings import Finding
from repro.analysis.registry import FileChecker, register_checker

#: Private fast-path helpers: ``_try_mask``, ``_join_columnar``, ...
#: (public names like ``Relation.from_columnar`` are constructors, not
#: guarded fast paths, and do not match).
FASTPATH_NAME = re.compile(r"^_try_\w+$|^_\w+_columnar$")


def _none_checked_names(fn: AnyFunction) -> set:
    """Names compared against ``None`` anywhere in ``fn``."""
    names = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
            continue
        operands = [node.left] + list(node.comparators)
        if not any(
            isinstance(o, ast.Constant) and o.value is None for o in operands
        ):
            continue
        for operand in operands:
            if isinstance(operand, ast.Name):
                names.add(operand.id)
            elif isinstance(operand, ast.NamedExpr) and isinstance(
                operand.target, ast.Name
            ):
                names.add(operand.target.id)
    return names


def _assign_targets(node: ast.AST) -> List[str]:
    if isinstance(node, ast.Assign):
        return [t.id for t in node.targets if isinstance(t, ast.Name)]
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return [node.target.id]
    if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
        return [node.target.id]
    return []


@register_checker
class FallbackGuardChecker(FileChecker):
    rule = "REP005"
    name = "unguarded-fastpath"
    title = "columnar fast path called outside the fallback guard"
    severity = "error"

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if not FASTPATH_NAME.match(name):
                continue
            fn = module.enclosing_function(node)
            if fn is None:
                yield self._unguarded(module, node, name)
                continue
            # A fast path may *delegate* to another fast path in a
            # return position: the None signal propagates unchanged and
            # the outermost caller holds the guard.
            if FASTPATH_NAME.match(fn.name) and any(
                isinstance(anc, ast.Return) for anc in module.ancestors(node)
            ):
                continue
            checked = _none_checked_names(fn)
            guarded = False
            targets: List[str] = []
            for anc in module.ancestors(node):
                # ``if (x := _try_f(...)) is not None`` — the compare
                # ancestor itself is the guard.
                if isinstance(anc, ast.Compare) and any(
                    isinstance(op, (ast.Is, ast.IsNot)) for op in anc.ops
                ):
                    guarded = True
                    break
                targets = _assign_targets(anc)
                if targets:
                    break
                if anc is fn:
                    break
            if guarded:
                continue
            if targets and any(t in checked for t in targets):
                continue
            yield self._unguarded(module, node, name)

    def _unguarded(
        self, module: ModuleContext, node: ast.Call, name: str
    ) -> Finding:
        return self.finding(
            module,
            node,
            f"fast path {name}(...) is used without checking its "
            f"result for None (the row-path fallback signal)",
            hint=(
                f"assign the result (fast = {name}(...)) and branch on "
                "'fast is not None' with the reference row path as the "
                "else arm"
            ),
        )
