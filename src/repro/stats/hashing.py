"""Deterministic uniform hashing to [0, 1).

The sampling operator η_{a,m} (paper §4.4) needs a deterministic map from
a primary-key value to a uniform draw in [0, 1); a row is sampled when the
draw is below the sampling ratio m.  The paper uses MySQL's MD5/SHA1 and
argues (§12.3, SUHA) that cryptographic hashes are indistinguishable from
true uniform random variables for this purpose.

We provide two families:

* :func:`sha1_unit` — SHA1-based, the default; excellent uniformity.
* :func:`linear_unit` — a multiply-shift linear congruential hash, much
  faster but visibly less uniform; kept to reproduce the hash-choice
  trade-off discussion of §12.3 (see ``benchmarks/bench_ablation_hash``).

Both accept a ``seed`` that selects a member of the hash family, so
repeated experiments can draw independent samples while remaining fully
deterministic.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable, Sequence

_MAX64 = float(1 << 64)
_MASK64 = (1 << 64) - 1

# Large odd multipliers for the multiply-shift family (Dietzfelbinger).
_LINEAR_MULT = 0x9E3779B97F4A7C15
_LINEAR_XOR = 0xBF58476D1CE4E5B9


def _encode(values: Sequence) -> bytes:
    """Stable byte encoding of a key-value tuple."""
    parts = []
    for v in values:
        if isinstance(v, bytes):
            parts.append(b"b" + v)
        elif isinstance(v, bool):
            parts.append(b"o1" if v else b"o0")
        elif isinstance(v, int):
            parts.append(b"i" + str(v).encode())
        elif isinstance(v, float):
            parts.append(b"f" + struct.pack(">d", v))
        elif v is None:
            parts.append(b"n")
        else:
            parts.append(b"s" + str(v).encode("utf-8", "replace"))
    return b"\x1f".join(parts)


def sha1_unit(values: Sequence, seed: int = 0) -> float:
    """SHA1 hash of a key tuple, normalized to [0, 1)."""
    h = hashlib.sha1(_encode(values) + b"|" + str(seed).encode())
    return int.from_bytes(h.digest()[:8], "big") / _MAX64


def linear_unit(values: Sequence, seed: int = 0) -> float:
    """Multiply-shift hash of a key tuple, normalized to [0, 1).

    Faster than :func:`sha1_unit` but less uniform — mirrors the linear
    hash stored procedure discussed in paper §12.3.
    """
    acc = (seed * 2 + 1) & _MASK64
    for v in values:
        x = hash(v) & _MASK64
        acc = ((acc ^ x) * _LINEAR_MULT) & _MASK64
        acc ^= acc >> 29
        acc = (acc * _LINEAR_XOR) & _MASK64
    return ((acc ^ (acc >> 32)) & _MASK64) / _MAX64


HASH_FAMILIES = {"sha1": sha1_unit, "linear": linear_unit}

_active_family = [sha1_unit]


def unit_hash(values: Sequence, seed: int = 0) -> float:
    """The library-wide hash used by the η operator (default SHA1)."""
    return _active_family[0](values, seed)


def set_hash_family(name: str) -> Callable:
    """Select the active hash family ('sha1' or 'linear'); returns it."""
    fn = HASH_FAMILIES[name]
    _active_family[0] = fn
    return fn


def get_hash_family() -> Callable:
    """The currently active hash function."""
    return _active_family[0]
