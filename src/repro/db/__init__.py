"""Database substrate: base relations, deltas, views, maintenance."""

from repro.db.catalog import Catalog
from repro.db.database import Database
from repro.db.deltas import Delta, DeltaSet, deletions_name, insertions_name
from repro.db.maintenance import (
    CHANGE_TABLE,
    MULT,
    RECOMPUTE,
    TERM,
    MaintenanceStrategy,
    build_strategy,
    choose_strategy,
    classify_view,
    fresh_expr,
    is_spj,
    maintain,
    recompute_strategy,
    replace_leaves,
    signed_delta_expr,
)
from repro.db.sharding import (
    partition_delta,
    partition_leaves,
    partition_relation,
    shard_hash,
    shard_ids,
)
from repro.db.staleness import StalenessReport, changed_rows, classify
from repro.db.view import MaterializedView, augment_definition, hidden_sum_name

__all__ = [
    "CHANGE_TABLE",
    "Catalog",
    "Database",
    "Delta",
    "DeltaSet",
    "MULT",
    "MaintenanceStrategy",
    "MaterializedView",
    "RECOMPUTE",
    "StalenessReport",
    "TERM",
    "augment_definition",
    "build_strategy",
    "changed_rows",
    "choose_strategy",
    "classify",
    "classify_view",
    "deletions_name",
    "fresh_expr",
    "hidden_sum_name",
    "insertions_name",
    "is_spj",
    "maintain",
    "partition_delta",
    "partition_leaves",
    "partition_relation",
    "recompute_strategy",
    "shard_hash",
    "shard_ids",
    "replace_leaves",
    "signed_delta_expr",
]
