"""Stale sample view cleaning — paper Problem 1 (§4.5–4.6).

Given a stale view S, its maintenance strategy M, and a sampling ratio m,
the *cleaning expression* is

    C = push_down( η_{u,m}( M ) )

where u is the view's primary key (Def 2).  Evaluating C against the
stale database (stale view + delta relations) materializes Ŝ', a uniform
m-sample of the up-to-date view S' that *corresponds* (Property 1) to the
stale sample Ŝ = η_{u,m}(S) because the hash is deterministic.

:class:`SampleView` packages the whole lifecycle: draw Ŝ, build C, clean
to Ŝ', and re-anchor after the base view is maintained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.algebra.evaluator import hash_draw
from repro.algebra.expressions import Expr, Hash
from repro.algebra.relation import Relation
from repro.core.hashing import hash_sample
from repro.core.pushdown import PushdownReport, push_down_with_report
from repro.db.maintenance import MaintenanceStrategy, choose_strategy
from repro.errors import EstimationError


@dataclass
class CorrespondenceCheck:
    """Empirical verification of Property 1 between Ŝ and Ŝ'."""

    uniform_dirty: bool
    uniform_clean: bool
    superfluous_removed: bool
    missing_sampled: bool
    keys_preserved: bool

    def holds(self) -> bool:
        """All four conditions of Property 1."""
        return (
            self.uniform_dirty
            and self.uniform_clean
            and self.superfluous_removed
            and self.missing_sampled
            and self.keys_preserved
        )


def cleaning_expression(
    view, ratio: float, seed: int = 0,
    strategy: Optional[MaintenanceStrategy] = None,
    optimize: bool = True,
    sample_attrs: Optional[Tuple[str, ...]] = None,
) -> Tuple[Expr, PushdownReport]:
    """Build C (optionally without push-down, for the ablation).

    ``sample_attrs`` defaults to the view's full primary key; a subset
    (e.g. just the grouping key of a fact table) is also valid — hashing
    any attribute still includes every row with probability m (paper
    §12.5) and often pushes much deeper.
    """
    if strategy is None:
        strategy = choose_strategy(view)
    attrs = tuple(sample_attrs) if sample_attrs else tuple(view.key)
    hashed = Hash(strategy.expr, attrs, ratio, seed)
    if not optimize:
        return hashed, PushdownReport()
    return push_down_with_report(hashed, view.database.leaves())


class SampleView:
    """The SVC-maintained sample of one materialized view.

    Parameters
    ----------
    view:
        A :class:`~repro.db.view.MaterializedView` (must be materialized).
    ratio:
        Sampling ratio m ∈ (0, 1].
    seed:
        Hash-family seed; distinct seeds draw independent samples.
    optimize:
        Apply hash push-down when building the cleaning expression
        (disable only for the ablation benchmark).
    """

    def __init__(
        self, view, ratio: float, seed: int = 0, optimize: bool = True,
        sample_attrs: Optional[Tuple[str, ...]] = None,
    ):
        if not 0.0 < ratio <= 1.0:
            raise EstimationError(f"sampling ratio must be in (0, 1]: {ratio}")
        if not view.key:
            raise EstimationError(
                f"view {view.name!r} has no primary key; SVC cannot sample it"
            )
        self.view = view
        self.ratio = float(ratio)
        self.seed = int(seed)
        self.optimize = optimize
        self.sample_attrs = tuple(sample_attrs) if sample_attrs else tuple(view.key)
        for a in self.sample_attrs:
            if a not in view.key:
                raise EstimationError(
                    f"sample attribute {a!r} is not part of the view key "
                    f"{view.key!r}"
                )
        self.dirty_sample: Relation = hash_sample(
            view.require_data(), ratio, seed=seed, attrs=self.sample_attrs
        )
        self.clean_sample: Optional[Relation] = None
        self.last_report: Optional[PushdownReport] = None

    # ------------------------------------------------------------------
    def clean(
        self, strategy: Optional[MaintenanceStrategy] = None
    ) -> Relation:
        """Problem 1: materialize Ŝ' = C(Ŝ, D, ∂D).

        The returned relation is an m-sample of the up-to-date view that
        corresponds to :attr:`dirty_sample`.  Under an active shard
        configuration (``set_shard_count(n)`` with n > 1) the cleaning
        expression is evaluated per shard and the per-shard hashed
        samples merge back into one sample — η is deterministic per row,
        so the union is exactly the single-shard sample.
        """
        if strategy is None:
            strategy = choose_strategy(self.view)
        expr, report = cleaning_expression(
            self.view, self.ratio, self.seed, strategy, self.optimize,
            sample_attrs=self.sample_attrs,
        )
        self.last_report = report
        result = self._evaluate_cleaning(expr, strategy)
        result.key = self.view.key
        result.name = f"{self.view.name}__sample"
        self.clean_sample = result
        return result

    def _evaluate_cleaning(
        self, expr: Expr, strategy: MaintenanceStrategy
    ) -> Relation:
        """Evaluate C single-shard or shard-parallel per the global config.

        The sharded path reuses the maintenance flow with the dirty
        sample as the identity source for skipped shards (a shard no
        delta row routes to cleans to η of its untouched stale slice —
        exactly its slice of the dirty sample).
        """
        from repro.algebra.compiler import compiled_evaluate
        from repro.distributed.shard import run_sharded

        result = run_sharded(
            self.view, expr, strategy, identity_source=self.dirty_sample
        )
        if result is None:
            # Cleaning expressions repeat their shape across periods
            # (same strategy, same pushed-down η), so the single-shard
            # path compiles once and reuses the fused pipeline.
            result = compiled_evaluate(expr, self.view.database.leaves())
        return result

    def require_clean(self) -> Relation:
        """The clean sample; raises if :meth:`clean` was never called."""
        if self.clean_sample is None:
            raise EstimationError(
                f"sample of {self.view.name!r} has not been cleaned yet"
            )
        return self.clean_sample

    # ------------------------------------------------------------------
    def advance(self) -> None:
        """Re-anchor after the underlying view was fully maintained.

        The clean sample becomes the new dirty sample (it is exactly
        η(S') of the maintained view because hashing is deterministic).
        """
        data = self.view.require_data()
        self.dirty_sample = hash_sample(
            data, self.ratio, seed=self.seed, attrs=self.sample_attrs
        )
        self.clean_sample = None

    # ------------------------------------------------------------------
    def check_correspondence(self, fresh: Relation) -> CorrespondenceCheck:
        """Verify Property 1 empirically against ground truth S'."""
        clean = self.require_clean()
        dirty = self.dirty_sample
        stale = self.view.require_data()
        key_idx = stale.schema.indexes(self.view.key)
        hash_pos = [self.view.key.index(a) for a in self.sample_attrs]

        def keys_of(rel):
            return {tuple(r[i] for i in key_idx) for r in rel.rows}

        def draw(key):
            return hash_draw(tuple(key[i] for i in hash_pos), self.seed)

        stale_keys = keys_of(stale)
        fresh_keys = keys_of(fresh)
        dirty_keys = keys_of(dirty)
        clean_keys = keys_of(clean)

        # Uniformity: every sampled key hashes below m, every unsampled
        # key at or above (exact, because hashing is deterministic).
        def uniform(rel_keys, pop_keys):
            for k in pop_keys:
                below = draw(k) < self.ratio
                if below != (k in rel_keys):
                    return False
            return True

        superfluous = {k for k in dirty_keys if k not in fresh_keys}
        missing_pop = fresh_keys - stale_keys
        expected_missing = {k for k in missing_pop if draw(k) < self.ratio}
        surviving = dirty_keys - superfluous
        return CorrespondenceCheck(
            uniform_dirty=uniform(dirty_keys, stale_keys),
            uniform_clean=uniform(clean_keys, fresh_keys),
            superfluous_removed=not (superfluous & clean_keys),
            missing_sampled=expected_missing <= clean_keys,
            keys_preserved=surviving <= clean_keys,
        )

    def __repr__(self):
        n_clean = len(self.clean_sample) if self.clean_sample is not None else "-"
        return (
            f"<SampleView of {self.view.name} m={self.ratio:g} "
            f"dirty={len(self.dirty_sample)} clean={n_clean}>"
        )
