"""Helpers: throwaway mini-projects the analyzer runs against.

Checker tests never lint the real library — each test writes a tiny
fake project under ``tmp_path`` (with paths shaped like the real tree,
``src/repro/distributed/...``, so the path-scoped rules and allowlists
engage) and asserts which rules fire.
"""

import textwrap

import pytest

from repro.analysis import run_analysis


class MiniProject:
    """A throwaway source tree plus a one-call analyzer runner."""

    def __init__(self, root):
        self.root = root

    def write(self, rel, source):
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    def run(self, baseline=None):
        return run_analysis([self.root], self.root, baseline=baseline)

    def rules(self):
        """Actionable rule ids, sorted, one per finding."""
        return sorted(f.rule for f in self.run().findings)


@pytest.fixture
def project(tmp_path):
    return MiniProject(tmp_path)
