"""Outlier indexing experiments — paper §7.4 (Figure 8).

An index of the top-k l_extendedprice records pushes up (Def 5) into the
revenue-dependent views V3, V5, V10, V15; Fig 8(a) sweeps the Zipfian
skew z ∈ {1, 2, 3, 4} and reports the 75th-quartile query error with and
without the index; Fig 8(b) measures the maintenance overhead of index
sizes k ∈ {0, 10, 100, 1000}.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.outlier_index import OutlierIndex
from repro.core.svc import StaleViewCleaner
from repro.db.catalog import Catalog
from repro.db.maintenance import choose_strategy
from repro.experiments.harness import ExperimentResult, timed
from repro.workloads.complex_views import (
    DENORM,
    build_denormalized,
    create_complex_views,
    generate_denorm_updates,
)
from repro.workloads.queries import QueryGenerator, relative_error
from repro.workloads.tpcd import TPCDConfig, TPCDGenerator


def _skewed_workload(z: float, scale: float, seed: int, update_fraction: float,
                     names):
    gen = TPCDGenerator(TPCDConfig(scale=scale, z=z, seed=seed))
    tpcd_db = gen.build()
    denorm_db = build_denormalized(tpcd_db)
    catalog = Catalog(denorm_db)
    views = create_complex_views(denorm_db, names=list(names), catalog=catalog)
    generate_denorm_updates(denorm_db, update_fraction, seed=seed)
    return denorm_db, views


def _quartile_errors(view, ratio, index, n_queries, seed, pred_attrs, agg_attrs):
    """75th-percentile relative error for AQP/CORR with/without index."""
    fresh = view.fresh_data()
    qgen = QueryGenerator(view.require_data(), pred_attrs, agg_attrs,
                          funcs=("sum",), seed=seed)
    queries = qgen.batch(n_queries)
    truths = [q.evaluate(fresh) for q in queries]

    plain = StaleViewCleaner(view, ratio=ratio, seed=seed)
    plain.refresh()
    indexed = StaleViewCleaner(view, ratio=ratio, seed=seed,
                               outlier_index=index)
    indexed.refresh()

    def q75(errors):
        return 100 * float(np.percentile(errors, 75))

    out = {}
    for label, cleaner in (("", plain), ("_out", indexed)):
        for method in ("aqp", "corr"):
            errs = [
                relative_error(cleaner.query(q, method=method).value, t)
                for q, t in zip(queries, truths)
            ]
            out[f"{method}{label}"] = q75(errs)
    out["stale"] = q75(
        [relative_error(plain.stale_answer(q), t)
         for q, t in zip(queries, truths)]
    )
    return out


def fig8a_skew_accuracy(
    zipf_params: Sequence[float] = (1.0, 2.0, 3.0, 4.0),
    scale: float = 0.25,
    ratio: float = 0.1,
    index_size: int = 100,
    update_fraction: float = 0.1,
    n_queries: int = 20,
    seed: int = 42,
    view_name: str = "V3",
) -> ExperimentResult:
    """Fig 8(a): V3 75%-quartile error vs skew, with/without the index."""
    result = ExperimentResult(
        "fig8a", f"Outlier index: {view_name} 75%-quartile error vs skew "
                 f"(k={index_size})",
        notes="paper: at z=4 the index halves SVC error; stale is worst",
    )
    for z in zipf_params:
        db, views = _skewed_workload(z, scale, seed, update_fraction,
                                     (view_name,))
        view = views[view_name]
        index = OutlierIndex.from_top_k(
            db.relation(DENORM), "l_extendedprice", index_size
        )
        from repro.workloads.complex_views import complex_query_attrs

        pred_attrs, agg_attrs = complex_query_attrs(view_name)
        errs = _quartile_errors(view, ratio, index, n_queries, seed,
                                pred_attrs, agg_attrs)
        result.add(
            zipf_z=z,
            stale_pct=errs["stale"],
            svc_aqp_pct=errs["aqp"],
            svc_aqp_out_pct=errs["aqp_out"],
            svc_corr_pct=errs["corr"],
            svc_corr_out_pct=errs["corr_out"],
        )
    return result


def fig8b_index_overhead(
    index_sizes: Sequence[int] = (0, 10, 100, 1000),
    view_names: Sequence[str] = ("V3", "V5", "V10", "V15"),
    scale: float = 0.25,
    ratio: float = 0.1,
    update_fraction: float = 0.1,
    z: float = 2.0,
    seed: int = 42,
) -> ExperimentResult:
    """Fig 8(b): maintenance overhead of the outlier index vs IVM."""
    from repro.algebra.evaluator import evaluate
    from repro.core.cleaning import cleaning_expression
    from repro.core.outlier_index import OutlierAugmentedSample

    result = ExperimentResult(
        "fig8b", "Outlier index: maintenance overhead (s)",
        notes="paper: the index adds a small overhead relative to IVM",
    )
    db, views = _skewed_workload(z, scale, seed, update_fraction, view_names)
    for name in view_names:
        view = views[name]
        strategy = choose_strategy(view)
        ivm_t = timed(lambda: evaluate(strategy.expr, db.leaves()), repeat=3)
        row = {"view": name, "ivm_seconds": ivm_t}
        for k in index_sizes:
            if k == 0:
                expr, _ = cleaning_expression(view, ratio, seed, strategy)
                evaluate(expr, db.leaves())
                row["k0_seconds"] = timed(
                    lambda: evaluate(expr, db.leaves()), repeat=3)
                continue
            index = OutlierIndex.from_top_k(
                db.relation(DENORM), "l_extendedprice", k
            )
            sample = OutlierAugmentedSample(view, ratio, index, seed)
            sample.clean()  # warm
            row[f"k{k}_seconds"] = timed(lambda: sample.clean(), repeat=2)
        result.add(**row)
    return result
