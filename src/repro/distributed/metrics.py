"""Utilization and timing metrics for the mini-batch experiments and the
sharded maintenance executor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.distributed.cluster import ClusterModel, cpu_utilization_trace


@dataclass
class ShardTiming:
    """One shard's contribution to a sharded evaluation."""

    shard: int
    rows: int
    seconds: float
    skipped: bool = False


@dataclass
class TransportStats:
    """How one round's shard inputs crossed the process boundary.

    ``transport`` is ``"shm"`` (shared-memory columnar transport),
    ``"pickle"`` (everything serialized into the task payloads), or
    ``"local"`` (serial/thread execution — nothing crossed a process
    boundary).  ``input_bytes`` counts what was actually shipped this
    round: task-payload pickles plus newly written shared-memory bytes.
    ``shm_resident_bytes`` is the volume *not* shipped because workers
    already hold it — the transport's whole point.  ``pool_rebuilt``
    records a successful broken-pool recovery; ``demoted`` carries the
    reason when the process backend was permanently demoted after
    failing twice in one round.
    """

    transport: str = "local"
    input_bytes: int = 0
    shm_written_bytes: int = 0
    shm_resident_bytes: int = 0
    segments_created: int = 0
    pool_rebuilt: bool = False
    demoted: str = ""


@dataclass
class ShardRunReport:
    """Metrics of one sharded maintenance/cleaning evaluation.

    ``skipped`` shards were proven untouched by the pending deltas and
    reassembled from the stale view without any evaluation.
    ``transport`` describes what the round shipped to pool workers (and
    any broken-pool recovery/demotion that happened on the way).
    """

    view: str
    attrs: Tuple[str, ...]
    backend: str
    shards: List[ShardTiming] = field(default_factory=list)
    partitioned: Tuple[str, ...] = ()
    transport: TransportStats = field(default_factory=TransportStats)

    @property
    def count(self) -> int:
        return len(self.shards)

    @property
    def skipped_count(self) -> int:
        return sum(1 for s in self.shards if s.skipped)

    @property
    def total_rows(self) -> int:
        return sum(s.rows for s in self.shards)

    @property
    def eval_seconds(self) -> float:
        """Summed per-shard evaluation time (CPU cost, not wall time)."""
        return sum(s.seconds for s in self.shards)

    @property
    def input_bytes(self) -> int:
        """Serialized bytes shipped to workers this round."""
        return self.transport.input_bytes

    def summary(self) -> str:
        t = self.transport
        wire = ""
        if t.transport != "local":
            wire = (
                f", {t.transport} transport: {t.input_bytes / 1e6:.2f} MB "
                f"shipped / {t.shm_resident_bytes / 1e6:.2f} MB resident"
            )
        if t.pool_rebuilt:
            wire += ", pool rebuilt"
        if t.demoted:
            wire += f", DEMOTED ({t.demoted})"
        return (
            f"{self.view}: {self.count} shard(s) on {self.backend}, "
            f"{self.skipped_count} skipped, {self.total_rows} rows, "
            f"eval {self.eval_seconds * 1e3:.1f} ms "
            f"(partitioned: {', '.join(self.partitioned) or 'none'})"
            + wire
        )


@dataclass
class UtilizationSummary:
    """Aggregate statistics of a CPU-utilization trace (Fig 16)."""

    mean: float
    p10: float
    p90: float
    idle_seconds_below_25: int

    @classmethod
    def from_trace(cls, trace: np.ndarray) -> "UtilizationSummary":
        return cls(
            mean=float(trace.mean()),
            p10=float(np.percentile(trace, 10)),
            p90=float(np.percentile(trace, 90)),
            idle_seconds_below_25=int((trace < 25).sum()),
        )


def compare_utilization(
    model: ClusterModel, batch_gb: float, seconds: int = 300, seed: int = 0
) -> Dict[str, UtilizationSummary]:
    """Fig 16: IVM-only vs IVM+SVC utilization summaries."""
    ivm = cpu_utilization_trace(model, batch_gb, seconds, with_svc=False,
                                seed=seed)
    both = cpu_utilization_trace(model, batch_gb, seconds, with_svc=True,
                                 seed=seed)
    return {
        "IVM": UtilizationSummary.from_trace(ivm),
        "IVM+SVC": UtilizationSummary.from_trace(both),
    }
