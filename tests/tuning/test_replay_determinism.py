"""A recorded tuning run must replay bit-identically.

The DecisionLog is the tuner's flight recorder: features in, candidates
ranked, choice out, observed cost back.  Replaying a serialized log
through a fresh ``Tuner`` (same probe, same inputs) must reproduce the
exact decision sequence — same chosen configs, same predicted floats —
which guards the whole decision path against hash-randomization and
dict-iteration-order nondeterminism, the same class of bug the
``REPRO_CHAOS_SEED`` machinery pins in the reliability suite.  Any
unsorted ``set``/``dict`` walk in candidate enumeration, model fitting,
or tie-breaking shows up here as a flaky bit-diff.
"""

import pickle

from repro import Catalog, Database, set_auto_tune
from repro.algebra import AggSpec, Aggregate, BaseRel, Join, Relation, Schema
from repro.tuning import (
    DecisionLog,
    HardwareProbe,
    RoundFeatures,
    Tuner,
    replay_decisions,
)

PROBE = HardwareProbe(cores=1)

# A fixed synthetic trace: (round features, observed seconds).  The
# observations deliberately disagree with the priors so the replayed
# model refits away from its starting point every round.
TRACE = [
    (RoundFeatures(5_000, 40_000, 500, True), 0.004),
    (RoundFeatures(5_000, 40_000, 500, True), 0.0045),
    (RoundFeatures(20_000, 45_000, 600, True), 0.015),
    (RoundFeatures(1_000, 45_500, 600, True), 0.0011),
    (RoundFeatures(1_000, 45_500, 600, False), 0.0032),
    (RoundFeatures(50_000, 46_000, 700, True), 0.031),
    (RoundFeatures(2_500, 48_000, 700, True), 0.002),
    (RoundFeatures(2_500, 48_000, 700, True), 0.0019),
]


def run_trace():
    tuner = Tuner(probe=PROBE)
    for feats, observed in TRACE:
        tuner.observe(tuner.choose(feats), observed)
    return tuner


def assert_bit_identical(original, replayed):
    assert len(original) == len(replayed)
    for a, b in zip(original, replayed):
        assert a.chosen == b.chosen
        assert a.features == b.features
        assert a.candidates == b.candidates  # every predicted float, exact
        assert a.predicted_s == b.predicted_s
        assert a.best_predicted_s == b.best_predicted_s
        assert a.switched == b.switched


class TestReplayDeterminism:
    def test_synthetic_trace_replays_bit_identically(self):
        tuner = run_trace()
        replayed = replay_decisions(PROBE, tuner.log.decisions)
        assert_bit_identical(tuner.log.decisions, replayed)

    def test_replay_survives_json_round_trip(self):
        tuner = run_trace()
        text = tuner.log.to_json(tuner.probe)
        probe, log = DecisionLog.from_json(text)
        assert probe == tuner.probe
        assert log.decisions == tuner.log.decisions
        assert log.total_recorded == tuner.log.total_recorded
        replayed = replay_decisions(probe, log.decisions)
        assert_bit_identical(log.decisions, replayed)

    def test_two_fresh_tuners_agree_exactly(self):
        a, b = run_trace(), run_trace()
        assert a.log.decisions == b.log.decisions

    def test_log_pickles_stably(self):
        tuner = run_trace()
        clone = pickle.loads(pickle.dumps(tuner.log))
        assert clone.decisions == tuner.log.decisions
        assert pickle.dumps(clone) == pickle.dumps(tuner.log)

    def test_seeded_maintenance_run_replays_identically(self):
        """End to end: record a real auto-tuned run, replay it offline."""
        def run_once():
            db = Database()
            db.add_relation(Relation(Schema(["sessionId", "videoId"]),
                                     [(s, s % 20) for s in range(1500)],
                                     key=("sessionId",), name="Log"))
            db.add_relation(Relation(Schema(["videoId", "ownerId"]),
                                     [(v, v % 3) for v in range(20)],
                                     key=("videoId",), name="Video"))
            cat = Catalog(db)
            cat.create_view(
                "v",
                Aggregate(Join(BaseRel("Log"), BaseRel("Video"),
                               on=[("videoId", "videoId")],
                               foreign_key=True),
                          ["videoId", "ownerId"],
                          [AggSpec("visits", "count")]),
            )
            tuner = Tuner(probe=PROBE)
            set_auto_tune(True, tuner=tuner)
            try:
                for r in range(4):
                    db.insert("Log", [(10_000 + 200 * r + i, i % 20)
                                      for i in range(200)])
                    cat.maintain_all()
            finally:
                set_auto_tune(False)
            return tuner

        tuner = run_once()
        probe, log = DecisionLog.from_json(tuner.log.to_json(tuner.probe))
        replayed = replay_decisions(probe, log.decisions)
        # Wall-clock observations differ run to run, but the decision
        # *function* is deterministic: identical features + identical
        # recorded observations → identical choices and predictions.
        assert_bit_identical(log.decisions, replayed)
