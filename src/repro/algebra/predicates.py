"""Scalar terms and boolean predicates over rows.

Generalized projection (paper §3.1) allows output attributes that are
arithmetic transformations of input attributes; selections need boolean
conditions.  Both are represented as small immutable term trees that can
be *bound* against a :class:`~repro.algebra.schema.Schema` to produce a
fast ``row -> value`` callable (index lookups are resolved once at bind
time instead of per row).

Terms report the set of columns they reference via :meth:`Term.columns`,
which the hash push-down optimizer uses to decide whether a projection
retains the sampling key.
"""

from __future__ import annotations

import operator
from typing import Callable, FrozenSet, Sequence

from repro.algebra.schema import Schema

_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}


class Term:
    """Base class for scalar terms and predicates."""

    def columns(self) -> FrozenSet[str]:
        """The set of column names this term reads."""
        raise NotImplementedError

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        """Compile this term against ``schema`` into a ``row -> value``."""
        raise NotImplementedError

    # Operator sugar so callers can write ``col("x") + 1 > col("y")``.
    def __add__(self, other):
        return BinOp("+", self, _coerce(other))

    def __sub__(self, other):
        return BinOp("-", self, _coerce(other))

    def __mul__(self, other):
        return BinOp("*", self, _coerce(other))

    def __truediv__(self, other):
        return BinOp("/", self, _coerce(other))

    def __mod__(self, other):
        return BinOp("%", self, _coerce(other))

    def __radd__(self, other):
        return BinOp("+", _coerce(other), self)

    def __rsub__(self, other):
        return BinOp("-", _coerce(other), self)

    def __rmul__(self, other):
        return BinOp("*", _coerce(other), self)

    def __eq__(self, other):  # type: ignore[override]
        return Comparison("==", self, _coerce(other))

    def __ne__(self, other):  # type: ignore[override]
        return Comparison("!=", self, _coerce(other))

    def __lt__(self, other):
        return Comparison("<", self, _coerce(other))

    def __le__(self, other):
        return Comparison("<=", self, _coerce(other))

    def __gt__(self, other):
        return Comparison(">", self, _coerce(other))

    def __ge__(self, other):
        return Comparison(">=", self, _coerce(other))

    __hash__ = None


def _coerce(value) -> "Term":
    return value if isinstance(value, Term) else Const(value)


class Col(Term):
    """A reference to a column by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def columns(self):
        return frozenset((self.name,))

    def bind(self, schema):
        i = schema.index(self.name)
        return lambda row: row[i]

    def __repr__(self):
        return f"col({self.name!r})"


class Const(Term):
    """A literal constant."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def columns(self):
        return frozenset()

    def bind(self, schema):
        v = self.value
        return lambda row: v

    def __repr__(self):
        return f"lit({self.value!r})"


class BinOp(Term):
    """A binary arithmetic operation between two terms."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Term, right: Term):
        if op not in _OPS:
            raise ValueError(f"unsupported operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def columns(self):
        return self.left.columns() | self.right.columns()

    def bind(self, schema):
        fn = _OPS[self.op]
        lf = self.left.bind(schema)
        rf = self.right.bind(schema)
        return lambda row: fn(lf(row), rf(row))

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class Func(Term):
    """An arbitrary scalar function of one or more terms.

    ``fn`` is an opaque Python callable; terms built from :class:`Func`
    are treated as *non key-preserving* transformations by the push-down
    optimizer unless the key column is passed through untouched elsewhere
    (this is how the V22-style "string transformation of a key" blocking
    case of the paper arises).
    """

    __slots__ = ("label", "fn", "args")

    def __init__(self, label: str, fn: Callable, args: Sequence[Term]):
        self.label = label
        self.fn = fn
        self.args = tuple(_coerce(a) for a in args)

    def columns(self):
        out = frozenset()
        for a in self.args:
            out |= a.columns()
        return out

    def bind(self, schema):
        fn = self.fn
        bound = [a.bind(schema) for a in self.args]
        return lambda row: fn(*(b(row) for b in bound))

    def __repr__(self):
        return f"{self.label}({', '.join(map(repr, self.args))})"


class Tup(Term):
    """A tuple-valued term ``(t1, t2, ...)``.

    Used by change-table aggregates that need (priority, value) or
    (multiplicity, value) pairs — see ``repro.algebra.aggregates.PICK``.
    """

    __slots__ = ("terms",)

    def __init__(self, *terms):
        self.terms = tuple(_coerce(t) for t in terms)

    def columns(self):
        out = frozenset()
        for t in self.terms:
            out |= t.columns()
        return out

    def bind(self, schema):
        bound = [t.bind(schema) for t in self.terms]
        return lambda row: tuple(b(row) for b in bound)

    def __repr__(self):
        return f"tup({', '.join(map(repr, self.terms))})"


# ----------------------------------------------------------------------
# Boolean predicates
# ----------------------------------------------------------------------
class Predicate(Term):
    """Base class for boolean terms; supports ``&``, ``|``, ``~``."""

    def __and__(self, other):
        return And(self, other)

    def __or__(self, other):
        return Or(self, other)

    def __invert__(self):
        return Not(self)


class Comparison(Predicate):
    """``left <op> right`` where op is a comparison operator."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left, right):
        if op not in ("==", "!=", "<", "<=", ">", ">="):
            raise ValueError(f"not a comparison operator: {op!r}")
        self.op = op
        self.left = _coerce(left)
        self.right = _coerce(right)

    def columns(self):
        return self.left.columns() | self.right.columns()

    def bind(self, schema):
        fn = _OPS[self.op]
        lf = self.left.bind(schema)
        rf = self.right.bind(schema)
        return lambda row: bool(fn(lf(row), rf(row)))

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Predicate):
    """Logical conjunction of predicates."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate):
        self.parts = tuple(parts)

    def columns(self):
        out = frozenset()
        for p in self.parts:
            out |= p.columns()
        return out

    def bind(self, schema):
        fns = [p.bind(schema) for p in self.parts]
        return lambda row: all(f(row) for f in fns)

    def __repr__(self):
        return "(" + " & ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    """Logical disjunction of predicates."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate):
        self.parts = tuple(parts)

    def columns(self):
        out = frozenset()
        for p in self.parts:
            out |= p.columns()
        return out

    def bind(self, schema):
        fns = [p.bind(schema) for p in self.parts]
        return lambda row: any(f(row) for f in fns)

    def __repr__(self):
        return "(" + " | ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    """Logical negation of a predicate."""

    __slots__ = ("part",)

    def __init__(self, part: Predicate):
        self.part = part

    def columns(self):
        return self.part.columns()

    def bind(self, schema):
        f = self.part.bind(schema)
        return lambda row: not f(row)

    def __repr__(self):
        return f"~{self.part!r}"


class IsIn(Predicate):
    """``term IN (v1, v2, ...)`` membership test."""

    __slots__ = ("term", "values")

    def __init__(self, term, values):
        self.term = _coerce(term)
        self.values = frozenset(values)

    def columns(self):
        return self.term.columns()

    def bind(self, schema):
        f = self.term.bind(schema)
        vals = self.values
        return lambda row: f(row) in vals

    def __repr__(self):
        return f"({self.term!r} in {sorted(self.values, key=repr)!r})"


class Between(Predicate):
    """``lo <= term <= hi`` (inclusive range test)."""

    __slots__ = ("term", "lo", "hi")

    def __init__(self, term, lo, hi):
        self.term = _coerce(term)
        self.lo = lo
        self.hi = hi

    def columns(self):
        return self.term.columns()

    def bind(self, schema):
        f = self.term.bind(schema)
        lo, hi = self.lo, self.hi
        return lambda row: lo <= f(row) <= hi

    def __repr__(self):
        return f"({self.lo!r} <= {self.term!r} <= {self.hi!r})"


class TruePredicate(Predicate):
    """A predicate that accepts every row (the trivial condition)."""

    __slots__ = ()

    def columns(self):
        return frozenset()

    def bind(self, schema):
        return lambda row: True

    def __repr__(self):
        return "true"


# Convenience constructors mirroring a tiny SQL-ish DSL.
def col(name: str) -> Col:
    """Reference a column: ``col('price') * (1 - col('discount'))``."""
    return Col(name)


def lit(value) -> Const:
    """A literal constant term."""
    return Const(value)


def func(label: str, fn: Callable, *args) -> Func:
    """An opaque scalar function term (blocks key push-down)."""
    return Func(label, fn, args)


ALWAYS = TruePredicate()
