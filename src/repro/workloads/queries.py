"""Random query generation over materialized views — paper §7.1.

For each view the paper generates 100 random sum/avg/count queries: a
random attribute a from the group-by clause supplies a range predicate
over a random subset of its domain, and a random numeric attribute b is
aggregated.  :class:`QueryGenerator` reproduces that scheme against any
keyed view relation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.algebra.predicates import ALWAYS, Between, IsIn, col
from repro.algebra.relation import Relation
from repro.core.estimators import AggQuery
from repro.errors import WorkloadError


class QueryGenerator:
    """Draws random predicated aggregate queries over one view.

    Parameters
    ----------
    view_data:
        The materialized view relation (domains are read from it).
    predicate_attrs:
        Attributes eligible for the random range predicate (typically the
        view's group-by attributes).
    aggregate_attrs:
        Numeric attributes eligible for aggregation.
    funcs:
        The aggregate functions to draw from.
    """

    def __init__(
        self,
        view_data: Relation,
        predicate_attrs: Sequence[str],
        aggregate_attrs: Sequence[str],
        funcs: Sequence[str] = ("sum", "count", "avg"),
        seed: int = 0,
        min_selectivity: float = 0.05,
    ):
        if not predicate_attrs or not aggregate_attrs:
            raise WorkloadError("need predicate and aggregate attributes")
        self.view_data = view_data
        self.predicate_attrs = list(predicate_attrs)
        self.aggregate_attrs = list(aggregate_attrs)
        self.funcs = list(funcs)
        self.rng = np.random.default_rng(seed)
        self.min_selectivity = min_selectivity

    def _predicate(self, attr: str):
        values = self.view_data.column(attr)
        if not values:
            return ALWAYS
        distinct = sorted(set(values), key=repr)
        if len(distinct) <= 3:
            picks = self.rng.choice(
                len(distinct), size=max(1, len(distinct) // 2), replace=False
            )
            return IsIn(col(attr), [distinct[i] for i in picks])
        # A random contiguous subrange covering at least min_selectivity
        # of the domain (the paper's "countryCode > 50 and < 100" style).
        n = len(distinct)
        width = max(2, int(n * self.rng.uniform(self.min_selectivity, 0.6)))
        start = int(self.rng.integers(0, max(1, n - width)))
        return Between(col(attr), distinct[start], distinct[start + width - 1])

    def draw(self, func: Optional[str] = None) -> AggQuery:
        """One random query (random predicate attr, agg attr, function)."""
        if func is None:
            func = self.funcs[int(self.rng.integers(0, len(self.funcs)))]
        pattr = self.predicate_attrs[
            int(self.rng.integers(0, len(self.predicate_attrs)))
        ]
        aattr = (
            None
            if func == "count"
            else self.aggregate_attrs[
                int(self.rng.integers(0, len(self.aggregate_attrs)))
            ]
        )
        pred = self._predicate(pattr)
        return AggQuery(func, aattr, pred, name=f"{func}({aattr or '*'})|{pattr}")

    def batch(self, n: int, func: Optional[str] = None) -> List[AggQuery]:
        """``n`` random queries (paper: 100 per view)."""
        return [self.draw(func) for _ in range(n)]


def relative_error(estimate: float, truth: float) -> float:
    """|r − r'| / |r|, capped at 100% (paper §7.1.1, Fig 12's axis).

    Zero truth counts as exact iff the estimate is also zero; NaN
    estimates count as fully wrong.
    """
    if truth == 0:
        return 0.0 if estimate == 0 else 1.0
    if estimate != estimate:  # NaN estimate counts as fully wrong
        return 1.0
    return min(1.0, abs(estimate - truth) / abs(truth))


def median_relative_error(pairs) -> float:
    """Median of relative errors over (estimate, truth) pairs."""
    errs = [relative_error(e, t) for e, t in pairs]
    return float(np.median(errs)) if errs else 0.0


def max_relative_error(pairs) -> float:
    """Max of relative errors over (estimate, truth) pairs (Fig 12)."""
    errs = [relative_error(e, t) for e, t in pairs]
    return float(max(errs)) if errs else 0.0
