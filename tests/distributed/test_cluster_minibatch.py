"""Tests for the mini-batch cluster simulator (§7.6.2)."""

import typing

import numpy as np
import pytest

from repro.distributed import (
    ClusterModel,
    ErrorModel,
    ShardRunReport,
    ShardTiming,
    SteadyStateConfig,
    UtilizationSummary,
    calibrated_error_model,
    compare_utilization,
    cpu_utilization_trace,
    engine_fingerprint,
    invalidate_calibrations,
    ivm_max_error,
    optimal_ratio,
    set_shard_count,
    svc_ivm_max_error,
    svc_refresh_period,
    sweep_sampling_ratios,
    throughput_curve,
)
from repro.errors import WorkloadError


@pytest.fixture
def model():
    return ClusterModel()


class TestThroughputModel:
    def test_throughput_increases_with_batch(self, model):
        small = model.throughput(5.0)
        large = model.throughput(200.0)
        assert large > 5 * small

    def test_asymptote_is_peak_rate(self, model):
        assert model.throughput(100000.0) == pytest.approx(
            model.peak_rate, rel=0.01)

    def test_two_threads_reduce_throughput(self, model):
        for g in (5.0, 40.0, 200.0):
            assert model.throughput(g, threads=2) < model.throughput(g)

    def test_contention_shrinks_with_batch_size(self, model):
        red_small = model.throughput(5.0) / model.throughput(5.0, 2)
        red_large = model.throughput(200.0) / model.throughput(200.0, 2)
        assert red_small > 1.7
        assert red_large < red_small

    def test_invalid_batch(self, model):
        with pytest.raises(WorkloadError):
            model.batch_time(0.0)

    def test_smallest_batch_for_demand(self, model):
        g = model.smallest_batch_for(500_000.0)
        assert model.throughput(g) >= 500_000.0
        # The next smaller candidate must fail the demand.
        assert model.throughput(g - 5.0) < 500_000.0 or g == 5.0

    def test_unreachable_demand_raises(self, model):
        with pytest.raises(WorkloadError):
            model.smallest_batch_for(10 * model.peak_rate)

    def test_throughput_curve_rows(self, model):
        rows = throughput_curve(model, [5.0, 50.0])
        assert len(rows) == 2 and rows[0]["throughput"] < rows[1]["throughput"]


class TestErrorModel:
    def _em(self):
        return ErrorModel(
            stale_points=[(0.0, 0.0), (0.1, 0.05), (0.2, 0.12)],
            estimation_points=[(0.01, 0.20), (0.1, 0.05), (0.2, 0.03)],
        )

    def test_interpolation(self):
        em = self._em()
        assert em.stale_error(0.05) == pytest.approx(0.025)
        assert em.estimation_error(0.055) == pytest.approx(0.125)

    def test_extrapolation_scale(self):
        em = ErrorModel([(0.0, 0.0), (0.1, 0.1)], [(0.1, 0.2)],
                        estimation_scale=0.5)
        assert em.estimation_error(0.1) == pytest.approx(0.1)

    def test_refresh_period_grows_with_ratio(self):
        model = ClusterModel()
        cfg = SteadyStateConfig()
        assert svc_refresh_period(model, cfg, 0.2) > svc_refresh_period(
            model, cfg, 0.02)

    def test_refresh_period_diverges(self):
        model = ClusterModel(peak_rate=100.0)
        cfg = SteadyStateConfig(target_rate=100.0)
        assert svc_refresh_period(model, cfg, 0.99) == float("inf")

    def test_sweep_and_optimum(self):
        model = ClusterModel()
        cfg = SteadyStateConfig()
        rows = sweep_sampling_ratios(model, self._em(), cfg,
                                     [0.01, 0.05, 0.1, 0.2])
        assert len(rows) == 4
        best = optimal_ratio(rows)
        assert best in (0.01, 0.05, 0.1, 0.2)
        ivm = ivm_max_error(model, self._em(), cfg)
        assert ivm["max_error"] >= 0.0

    def test_infeasible_ratio_reports_inf(self):
        model = ClusterModel(peak_rate=100.0)
        cfg = SteadyStateConfig(target_rate=100.0)
        row = svc_ivm_max_error(model, self._em(), cfg, 0.99)
        assert row["max_error"] == float("inf")


class TestUtilization:
    def test_svc_fills_idle(self):
        model = ClusterModel()
        summaries = compare_utilization(model, 40.0, seconds=240, seed=1)
        assert summaries["IVM+SVC"].mean > summaries["IVM"].mean
        assert (summaries["IVM+SVC"].idle_seconds_below_25
                < summaries["IVM"].idle_seconds_below_25)

    def test_trace_bounds(self):
        model = ClusterModel()
        trace = cpu_utilization_trace(model, 40.0, 120, with_svc=True, seed=0)
        assert trace.min() >= 0.0 and trace.max() <= 100.0

    def test_summary_from_trace(self):
        s = UtilizationSummary.from_trace(np.array([10.0, 50.0, 90.0]))
        assert s.mean == pytest.approx(50.0)
        assert s.idle_seconds_below_25 == 1

    def test_sub_second_period_still_shows_idle_windows(self):
        """Regression: integer-second sampling aliased sub-second batch
        periods to phase 0, producing a trace with no idle troughs."""
        model = ClusterModel(peak_rate=1e9, batch_overhead=0.3,
                             idle_max=0.75, idle_half_gb=0.001)
        trace = cpu_utilization_trace(model, 0.01, 200, with_svc=False,
                                      seed=3)
        assert (trace < 25).any(), "no idle windows in a mostly-idle trace"
        assert (trace > 80).any()


class TestFittedClusterModel:
    def _report(self, rows, seconds):
        return ShardRunReport(
            view="V", attrs=("k",), backend="process",
            shards=[ShardTiming(shard=0, rows=rows, seconds=seconds)],
        )

    def test_fit_recovers_line(self):
        # seconds = 2.0 + records / 1e6, measured at three batch sizes.
        reports = [
            self._report(n, 2.0 + n / 1e6)
            for n in (100_000, 400_000, 1_600_000)
        ]
        model = ClusterModel.from_shard_reports(reports)
        assert model.peak_rate == pytest.approx(1e6, rel=1e-6)
        assert model.batch_overhead == pytest.approx(2.0, rel=1e-6)

    def test_single_batch_size_rejected(self):
        reports = [self._report(100_000, 1.0), self._report(100_000, 1.1)]
        with pytest.raises(WorkloadError):
            ClusterModel.from_shard_reports(reports)

    def test_noise_dominated_falls_back_to_aggregate_rate(self):
        # Bigger batch measured *faster* — negative slope.
        reports = [self._report(100, 2.0), self._report(10_000, 1.0)]
        model = ClusterModel.from_shard_reports(reports)
        assert model.batch_overhead == 0.0
        assert model.peak_rate == pytest.approx(10_100 / 3.0)


class TestEngineFingerprintCalibration:
    """Regression: calibrated error models must not survive engine-toggle
    flips (`set_columnar_enabled` / `set_hash_family` / `set_shard_count`)
    between rounds."""

    @pytest.fixture(autouse=True)
    def _restore_engine(self):
        from repro.algebra.evaluator import columnar_enabled, set_columnar_enabled
        from repro.distributed import get_shard_config
        from repro.stats.hashing import HASH_FAMILIES, get_hash_family, set_hash_family

        columnar = columnar_enabled()
        family = next(name for name, fn in HASH_FAMILIES.items()
                      if fn is get_hash_family())
        cfg = get_shard_config()
        invalidate_calibrations()
        yield
        set_columnar_enabled(columnar)
        set_hash_family(family)
        set_shard_count(cfg.count, backend=cfg.backend,
                        max_workers=cfg.max_workers or 0,
                        transport=cfg.transport)
        invalidate_calibrations()

    def _fake_model(self):
        return ErrorModel([(0.0, 0.0), (0.1, 0.1)], [(0.1, 0.2)],
                          fingerprint=engine_fingerprint())

    def test_annotations_resolve(self):
        # `Optional` was referenced in calibrate_error_model's signature
        # without being imported; `from __future__ import annotations`
        # masked the NameError until the hints were materialized.
        from repro.distributed.minibatch import calibrate_error_model

        hints = typing.get_type_hints(calibrate_error_model)
        assert hints["extrapolate_to"] == typing.Optional[float]

    def test_cache_hit_while_engine_unchanged(self):
        calls = []

        def build():
            calls.append(1)
            return self._fake_model()

        a = calibrated_error_model(("k",), build)
        b = calibrated_error_model(("k",), build)
        assert a is b and len(calls) == 1

    def test_each_toggle_invalidates_calibration(self):
        from repro.algebra.evaluator import columnar_enabled, set_columnar_enabled
        from repro.distributed import get_shard_config
        from repro.stats.hashing import get_hash_family, set_hash_family

        calls = []

        def build():
            calls.append(1)
            return self._fake_model()

        def flip_columnar():
            set_columnar_enabled(not columnar_enabled())

        def flip_family():
            other = ("linear" if get_hash_family().__name__ == "sha1_unit"
                     else "sha1")
            set_hash_family(other)

        def flip_shards():
            set_shard_count(3 if get_shard_config().count != 3 else 2,
                            backend="serial")

        calibrated_error_model(("k",), build)
        for i, flip in enumerate([flip_columnar, flip_family, flip_shards],
                                 start=2):
            before = engine_fingerprint()
            flip()
            assert engine_fingerprint() != before
            model = calibrated_error_model(("k",), build)
            assert len(calls) == i, f"flip {flip.__name__} served stale model"
            assert model.is_current()

    def test_hand_built_model_always_current(self):
        em = ErrorModel([(0.0, 0.0)], [(0.1, 0.2)])
        assert em.is_current()
