"""Relation schemas.

A :class:`Schema` is an ordered, immutable sequence of column names.  Rows
of a relation are plain tuples positionally aligned with the schema.  The
schema provides fast column-index lookup, concatenation for joins, and
renaming helpers used by the expression evaluator.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError


class Schema:
    """An ordered, immutable list of unique column names.

    Parameters
    ----------
    columns:
        Iterable of column-name strings.  Names must be unique.
    """

    __slots__ = ("_columns", "_index")

    def __init__(self, columns: Iterable[str]):
        cols = tuple(columns)
        if not all(isinstance(c, str) and c for c in cols):
            raise SchemaError(f"column names must be non-empty strings: {cols!r}")
        index = {}
        for i, name in enumerate(cols):
            if name in index:
                raise SchemaError(f"duplicate column name {name!r} in schema {cols!r}")
            index[name] = i
        self._columns = cols
        self._index = index

    @property
    def columns(self) -> tuple:
        """The column names, in order."""
        return self._columns

    def index(self, name: str) -> int:
        """Return the position of column ``name``.

        Raises :class:`SchemaError` if the column does not exist.
        """
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; schema has {self._columns!r}"
            ) from None

    def indexes(self, names: Sequence[str]) -> tuple:
        """Return positions for a sequence of column names."""
        return tuple(self.index(n) for n in names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._columns == other._columns
        if isinstance(other, (tuple, list)):
            return self._columns == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        return f"Schema({list(self._columns)!r})"

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Schema":
        """Schema containing only ``names`` (order of ``names`` preserved)."""
        for n in names:
            self.index(n)  # validate
        return Schema(names)

    def concat(self, other: "Schema", drop_right: Sequence[str] = ()) -> "Schema":
        """Concatenate two schemas for a join result.

        ``drop_right`` lists columns of ``other`` to omit (used to collapse
        equi-join columns that would otherwise collide).  Any remaining name
        collision raises :class:`SchemaError`.
        """
        drop = set(drop_right)
        right_cols = [c for c in other.columns if c not in drop]
        overlap = set(self._columns).intersection(right_cols)
        if overlap:
            raise SchemaError(
                f"join would produce duplicate columns {sorted(overlap)!r}; "
                "rename inputs or join on the shared key"
            )
        return Schema(self._columns + tuple(right_cols))

    def rename(self, mapping: dict) -> "Schema":
        """Return a schema with columns renamed via ``mapping``."""
        return Schema(tuple(mapping.get(c, c) for c in self._columns))


def as_schema(value) -> Schema:
    """Coerce a Schema, tuple or list of names into a :class:`Schema`."""
    if isinstance(value, Schema):
        return value
    return Schema(value)
