"""Expression evaluation: columnar fast paths over a row-at-a-time core.

:func:`evaluate` executes an expression tree bottom-up against a leaf
resolver (mapping relation name -> :class:`Relation`) and returns a new
:class:`Relation` whose primary key is derived per Def 2.

Every operator has a reference row-at-a-time implementation that defines
the semantics.  The hot operators additionally have *columnar* fast
paths — selection masks via :meth:`Predicate.mask`, batched η hashing
via :func:`repro.stats.hashing.unit_hash_batch`, and grouped
``reduceat``-style aggregation over
:class:`~repro.algebra.columnar.ColumnarRelation` views — which the
evaluator tries first and abandons (per operator, per aggregate spec)
whenever a value does not vectorize cleanly, so results are identical to
the row path by construction.  :func:`set_columnar_enabled` switches the
fast paths off globally, which the equivalence tests and the
``bench_vectorized_eval`` microbenchmark use to compare the two engines.

Implementation notes
--------------------
* Equality joins are hash joins (build on the right input) whose
  build/probe keys are extracted column-wise in bulk, with an
  empty-input fast path for inner joins.
* Outer joins pad the missing side with ``None``; equality columns that
  share a name on both sides collapse to a single output column which
  always carries the key value regardless of which side matched.
* The η operator filters rows whose key hash (``repro.stats.hashing``)
  falls below the sampling ratio.  The columnar path hashes all key
  columns in one batched pass; the row path memoizes per-key draws in a
  bounded, hash-family-aware cache (see :func:`hash_draw`).
* Shared subtree objects are evaluated once per :func:`evaluate` call
  (maintenance strategies deliberately share the fresh-version subtrees
  across change-table terms).
* :class:`Merge` implements the change-table merge: a full outer equality
  join on the view key followed by per-column combination, with emptied
  groups (support count driven to zero or below) removed — exactly the
  Π(S ⟗ change) maintenance step of paper Ex. 1.
"""

from __future__ import annotations

from itertools import compress
from typing import Mapping

import numpy as np

from repro.algebra.aggregates import get_aggregate
from repro.algebra.columnar import group_ids, grouped_starts
from repro.algebra.expressions import (
    Aggregate,
    BaseRel,
    Difference,
    Expr,
    Hash,
    Intersect,
    Join,
    Merge,
    Project,
    Select,
    Union,
)
from repro.algebra.keys import derive_key
from repro.algebra.predicates import _FLOAT_EXACT, _INT64_SAFE
from repro.algebra.relation import Relation
from repro.algebra.schema import Schema
from repro.errors import EvaluationError, KeyDerivationError, SchemaError
from repro.stats.hashing import get_hash_family, linear_unit, unit_hash_batch

#: Hidden column carrying the group support count in aggregate views and
#: the net multiplicity in change tables.  Prefixed so user queries never
#: collide with it.
GROUP_COUNT = "__grpcount__"

# Columnar fast paths are on by default; set_columnar_enabled(False)
# forces the reference row-at-a-time implementations everywhere.
_COLUMNAR = [True]


def set_columnar_enabled(enabled: bool) -> bool:
    """Globally enable/disable the columnar fast paths; returns the old value."""
    old = _COLUMNAR[0]
    _COLUMNAR[0] = bool(enabled)
    return old


def columnar_enabled() -> bool:
    """True when the columnar fast paths are active."""
    return _COLUMNAR[0]


# Hash values are pure functions of (key values, seed, hash family);
# cleaning and correspondence checks re-hash the same keys every period,
# so memoize — but bound the cache (it previously grew without limit
# across maintenance periods) and invalidate it automatically when the
# active hash family changes.
_HASH_MEMO: dict = {}
_HASH_MEMO_FAMILY = [None]

#: Entry cap for the hash-draw memo; the cache is dropped wholesale when
#: it fills (hash draws are cheap to recompute relative to unbounded RSS).
HASH_MEMO_LIMIT = 1 << 20


def clear_hash_memo() -> None:
    """Drop cached hash draws (also done automatically on family change)."""
    _HASH_MEMO.clear()
    _HASH_MEMO_FAMILY[0] = None


def hash_draw(values: tuple, seed: int) -> float:
    """Memoized uniform draw in [0,1) for a key tuple under ``seed``."""
    fam = get_hash_family()
    if fam is not _HASH_MEMO_FAMILY[0]:
        _HASH_MEMO.clear()
        _HASH_MEMO_FAMILY[0] = fam
    key = (values, seed)
    got = _HASH_MEMO.get(key)
    if got is None:
        if len(_HASH_MEMO) >= HASH_MEMO_LIMIT:
            _HASH_MEMO.clear()
        got = fam(values, seed)
        _HASH_MEMO[key] = got
    return got


def eta_mask(columns, ratio: float, seed: int):
    """Per-row sampling decisions for η over key ``columns``.

    The linear family hashes all rows in one numpy pass; cryptographic
    families (where per-row hashing dwarfs dict overhead) go through the
    memoized :func:`hash_draw`, so re-sampling the same keys at another
    ratio — the adaptive-cleaning pattern — stays cheap.
    """
    if get_hash_family() is linear_unit:
        return unit_hash_batch(columns, seed) < ratio
    return [hash_draw(key, seed) < ratio for key in zip(*columns)]


def evaluate(expr: Expr, leaves: Mapping) -> Relation:
    """Evaluate ``expr`` against ``leaves`` and return a keyed Relation."""
    rel = _eval(expr, leaves, {})
    try:
        rel.key = derive_key(expr, leaves)
    except KeyDerivationError:
        rel.key = None
    return rel


def _eval(expr: Expr, leaves: Mapping, memo: dict) -> Relation:
    """Evaluate with per-call memoization on node identity.

    Maintenance strategies share subtree objects (e.g. the fresh version
    of a base relation appears in several change-table terms); evaluating
    each shared node once makes the change-table cost proportional to the
    delta size rather than the term count.
    """
    key = id(expr)
    got = memo.get(key)
    if got is None:
        got = _eval_inner(expr, leaves, memo)
        memo[key] = got
    return got


def _eval_inner(expr: Expr, leaves: Mapping, memo: dict) -> Relation:
    if isinstance(expr, BaseRel):
        try:
            rel = leaves[expr.name]
        except KeyError:
            raise EvaluationError(f"unknown base relation {expr.name!r}") from None
        out = Relation(rel.schema, rel.rows, key=rel.key, name=expr.name)
        if isinstance(rel, Relation):
            # Share the leaf's columnar cache (same rows object) so
            # column arrays built in one evaluate() call amortize over
            # repeated queries against the same base data.
            out._columnar = rel.columnar()
        return out
    if isinstance(expr, Select):
        fast = _indexed_membership_select(expr, leaves)
        if fast is not None:
            return fast
        child = _eval(expr.child, leaves, memo)
        if _COLUMNAR[0] and child.rows:
            mask = _try_mask(expr.predicate, child)
            if mask is not None:
                out = Relation(child.schema, list(compress(child.rows, mask)))
                _slice_columnar_cache(child, out, mask)
                return out
        pred = expr.predicate.bind(child.schema)
        return Relation(child.schema, [r for r in child.rows if pred(r)])
    if isinstance(expr, Project):
        child = _eval(expr.child, leaves, memo)
        schema = Schema([o.name for o in expr.outputs])
        if (
            _COLUMNAR[0]
            and child.rows
            and expr.outputs
            and all(o.is_passthrough for o in expr.outputs)
        ):
            cols = child.columnar()
            rows = list(
                zip(*(cols.pycolumn(o.source_column()) for o in expr.outputs))
            )
            return Relation(schema, rows)
        fns = [o.term.bind(child.schema) for o in expr.outputs]
        rows = [tuple(fn(row) for fn in fns) for row in child.rows]
        return Relation(schema, rows)
    if isinstance(expr, Join):
        return _eval_join(expr, leaves, memo)
    if isinstance(expr, Aggregate):
        return _eval_aggregate(expr, leaves, memo)
    if isinstance(expr, Union):
        left, right = _eval_setop_inputs(expr, leaves, memo)
        if not right.rows:
            return Relation(left.schema, list(left.rows))
        seen = set(left.rows)
        rows = list(left.rows) + [r for r in right.rows if r not in seen]
        return Relation(left.schema, rows)
    if isinstance(expr, Intersect):
        left, right = _eval_setop_inputs(expr, leaves, memo)
        rset = set(right.rows)
        rows = [r for r in dict.fromkeys(left.rows) if r in rset]
        return Relation(left.schema, rows)
    if isinstance(expr, Difference):
        left, right = _eval_setop_inputs(expr, leaves, memo)
        if not right.rows:
            return Relation(left.schema, list(left.rows))
        rset = set(right.rows)
        rows = [r for r in dict.fromkeys(left.rows) if r not in rset]
        return Relation(left.schema, rows)
    if isinstance(expr, Hash):
        # Hash samples of named leaves are cached on the leaf relation —
        # the in-memory analogue of a hash index over the sampling key
        # (relations are immutable, so the cache cannot go stale).
        cache = None
        cache_key = None
        if isinstance(expr.child, BaseRel):
            leaf = leaves.get(expr.child.name) if hasattr(leaves, "get") else None
            if leaf is not None:
                cache = leaf.sample_cache()
                # The family is part of the key: cached samples must not
                # survive set_hash_family (same staleness bug the draw
                # memo had).
                cache_key = (expr.attrs, expr.ratio, expr.seed, get_hash_family())
                hit = cache.get(cache_key)
                if hit is not None:
                    return Relation(leaf.schema, hit, key=leaf.key)
        child = _eval(expr.child, leaves, memo)
        ratio, seed = expr.ratio, expr.seed
        if _COLUMNAR[0] and child.rows:
            # Batched η over whole key columns (vectorized for the
            # linear family, memoized per key otherwise).
            cols = child.columnar()
            mask = eta_mask([cols.pycolumn(a) for a in expr.attrs], ratio, seed)
            rows = list(compress(child.rows, mask))
        else:
            idx = child.schema.indexes(expr.attrs)
            rows = [
                row
                for row in child.rows
                if hash_draw(tuple(row[i] for i in idx), seed) < ratio
            ]
        if cache is not None:
            cache[cache_key] = rows
        return Relation(child.schema, rows, key=child.key)
    if isinstance(expr, Merge):
        return _eval_merge(expr, leaves, memo)
    raise EvaluationError(f"cannot evaluate {type(expr).__name__}")


def _indexed_membership_select(expr: Select, leaves) -> Relation:
    """Fast path: σ_{col ∈ K}(BaseRel) through a cached value index.

    Key-set pulls (outlier-index materialization, §6.2) select a small
    number of key values from a base relation; a database would serve
    them from a B-tree.  We cache a value→rows index on the (immutable)
    leaf relation so the selection costs O(|K| + output) instead of a
    full scan.
    """
    from repro.algebra.predicates import Col, IsIn

    pred = expr.predicate
    if not (isinstance(expr.child, BaseRel) and isinstance(pred, IsIn)
            and isinstance(pred.term, Col)):
        return None
    leaf = leaves.get(expr.child.name) if hasattr(leaves, "get") else None
    if leaf is None:
        return None
    cache = leaf.sample_cache()
    cache_key = ("__valindex__", pred.term.name)
    index = cache.get(cache_key)
    if index is None:
        pos = leaf.schema.index(pred.term.name)
        index = {}
        for row in leaf.rows:
            index.setdefault(row[pos], []).append(row)
        cache[cache_key] = index
    rows = []
    for value in pred.values:
        rows.extend(index.get(value, ()))
    return Relation(leaf.schema, rows, key=leaf.key)


def _slice_columnar_cache(child: Relation, out: Relation, mask) -> None:
    """Carry a Select child's materialized column arrays into its output.

    Arrays already built for the mask evaluation are sliced by the mask
    instead of being re-extracted row-wise by downstream operators (the
    σ→γ pipeline every SVC view query takes).
    """
    src = child._columnar
    if src is None:
        return
    dst = out.columnar()
    for name, arr in src._arrays.items():
        dst._arrays[name] = arr[mask]


def _try_mask(predicate, relation):
    """Vectorized selection mask, or None to fall back to the row path.

    Any failure — no columnar form, mixed-type comparison errors, float
    divide/invalid signals — defers to the row loop, which either
    produces the reference result or raises the reference error.
    """
    try:
        mask = predicate.mask(relation)
    except Exception:
        return None
    if len(mask) != len(relation.rows):
        return None
    return mask


def _join_keys(rel, cols):
    """Join keys for all rows, extracted column-wise in bulk.

    Single-column keys are the bare column values (no per-row tuple
    allocation); multi-column keys are tuples via one zip pass.
    """
    columnar = rel.columnar()
    if len(cols) == 1:
        return columnar.pycolumn(cols[0])
    return list(zip(*(columnar.pycolumn(c) for c in cols)))


def _eval_setop_inputs(expr, leaves, memo):
    left = _eval(expr.left, leaves, memo)
    right = _eval(expr.right, leaves, memo)
    if left.schema != right.schema:
        raise SchemaError(
            f"set operation requires identical schemas: "
            f"{left.schema!r} vs {right.schema!r}"
        )
    return left, right


def _eval_join(expr: Join, leaves, memo) -> Relation:
    left = _eval(expr.left, leaves, memo)
    right = _eval(expr.right, leaves, memo)
    lcols = expr.left_on()
    rcols = expr.right_on()
    if lcols:
        # Validate equality columns up front (before any fast path).
        left.schema.indexes(lcols)
        right.schema.indexes(rcols)

    collapsed = [rc for lc, rc in expr.on if lc == rc]
    kept_right = [c for c in right.schema.columns if c not in collapsed]
    out_schema = left.schema.concat(right.schema, drop_right=collapsed)
    kept_ridx = right.schema.indexes(kept_right)
    left_width = len(left.schema)

    if expr.how == "inner" and (not left.rows or not right.rows):
        return Relation(out_schema, [])

    # Positions in the output where collapsed equality columns live, paired
    # with the right-side source index — used to fill key values for rows
    # that only matched on the right (right/full outer joins).
    collapse_fill = []
    for lc, rc in expr.on:
        if lc == rc:
            collapse_fill.append((left.schema.index(lc), right.schema.index(rc)))

    theta = expr.theta.bind(out_schema) if expr.theta is not None else None

    rows = []
    matched_right = set()
    if lcols:
        if _COLUMNAR[0]:
            # Bulk column-wise build/probe key extraction (no per-row
            # tuple construction for single-column equality joins).
            build_keys = _join_keys(right, rcols)
            probe_keys = _join_keys(left, lcols)
        else:
            ridx = right.schema.indexes(rcols)
            lidx = left.schema.indexes(lcols)
            build_keys = [tuple(row[i] for i in ridx) for row in right.rows]
            probe_keys = [tuple(row[i] for i in lidx) for row in left.rows]
        build = {}
        for j, bkey in enumerate(build_keys):
            build.setdefault(bkey, []).append(j)
        right_rows = right.rows
        pad = (None,) * len(kept_right)
        for lrow, key in zip(left.rows, probe_keys):
            hit = False
            for j in build.get(key, ()):
                out = lrow + tuple(right_rows[j][i] for i in kept_ridx)
                if theta is None or theta(out):
                    rows.append(out)
                    matched_right.add(j)
                    hit = True
            if not hit and expr.how in ("left", "full"):
                rows.append(lrow + pad)
    else:
        # Pure theta join: nested loop.
        pad = (None,) * len(kept_right)
        for lrow in left.rows:
            hit = False
            for j, rrow in enumerate(right.rows):
                out = lrow + tuple(rrow[i] for i in kept_ridx)
                if theta is None or theta(out):
                    rows.append(out)
                    matched_right.add(j)
                    hit = True
            if not hit and expr.how in ("left", "full"):
                rows.append(lrow + pad)
    if expr.how in ("right", "full"):
        pad_left = [None] * left_width
        for j, rrow in enumerate(right.rows):
            if j in matched_right:
                continue
            out = list(pad_left)
            for out_pos, src_idx in collapse_fill:
                out[out_pos] = rrow[src_idx]
            rows.append(tuple(out) + tuple(rrow[i] for i in kept_ridx))
    return Relation(out_schema, rows)


def _eval_aggregate(expr: Aggregate, leaves, memo) -> Relation:
    child = _eval(expr.child, leaves, memo)
    out_schema = Schema(expr.group_by + tuple(a.name for a in expr.aggs))
    if _COLUMNAR[0]:
        fast = _aggregate_columnar(expr, child, out_schema)
        if fast is not None:
            return fast
    gidx = child.schema.indexes(expr.group_by)
    groups = {}
    for row in child.rows:
        groups.setdefault(tuple(row[i] for i in gidx), []).append(row)
    specs = []
    for a in expr.aggs:
        fn = get_aggregate(a.func)
        term = a.term.bind(child.schema) if a.term is not None else None
        specs.append((fn, term))
    rows = []
    if not groups and not expr.group_by and expr.aggs:
        # Global aggregate over an empty input still yields one row.
        groups = {(): []}
    for gkey, grows in groups.items():
        vals = []
        for fn, term in specs:
            if term is None:
                vals.append(fn.compute(grows))
            else:
                vals.append(fn.compute([term(r) for r in grows]))
        rows.append(gkey + tuple(vals))
    return Relation(out_schema, rows)


def _aggregate_columnar(expr: Aggregate, child: Relation, out_schema):
    """Columnar γ: grouped reduceat-style reductions, or None to fall back.

    Group ids come from :func:`repro.algebra.columnar.group_ids` in
    first-appearance order (identical to the dict grouping of the row
    path).  Each aggregate spec vectorizes independently: specs whose
    input term or dtype does not qualify are computed per group with the
    reference ``compute`` over stably-ordered row values, so a single
    exotic column never forces the whole γ back to the row loop.
    """
    rows = child.rows
    n = len(rows)
    if n == 0 or (not expr.group_by and not expr.aggs):
        return None
    try:
        cols = child.columnar()
        if expr.group_by:
            gid, group_keys = group_ids(cols, expr.group_by)
        else:
            gid = np.zeros(n, dtype=np.intp)
            group_keys = [()]
        ngroups = len(group_keys)
        counts = np.bincount(gid, minlength=ngroups)
        order = starts = split = None
        agg_cols = []
        for a in expr.aggs:
            fn = get_aggregate(a.func)
            values = None
            if fn.grouped is not None and a.term is not None:
                values = _vector_values(a.term, cols, fn.name)
            if fn.grouped is not None and (a.term is None or values is not None):
                if order is None:
                    order, starts = grouped_starts(gid, counts)
                sorted_vals = values[order] if values is not None else None
                agg_cols.append(fn.grouped(sorted_vals, starts, counts).tolist())
                continue
            # Per-spec fallback: reference compute over each group's
            # values, in row order (stable sort preserves it).
            if split is None:
                if order is None:
                    order, starts = grouped_starts(gid, counts)
                split = np.split(order, np.asarray(starts[1:]))
            bound = a.term.bind(child.schema) if a.term is not None else None
            out = []
            for g in range(ngroups):
                if bound is None:
                    vals = [rows[i] for i in split[g]]
                else:
                    vals = [bound(rows[i]) for i in split[g]]
                out.append(fn.compute(vals))
            agg_cols.append(out)
    except Exception:
        return None
    out_rows = [
        gkey + tuple(col[g] for col in agg_cols)
        for g, gkey in enumerate(group_keys)
    ]
    return Relation(out_schema, out_rows)


def _vector_values(term, cols, func_name):
    """A numeric value array for one aggregate input, or None to fall back.

    Float divide/invalid raise (mirroring the row path's ZeroDivisionError)
    instead of silently flowing inf/nan into the reductions.
    """
    try:
        with np.errstate(divide="raise", invalid="raise"):
            arr = term.vector(cols)
    except Exception:
        return None
    if np.ndim(arr) == 0 or not isinstance(arr, np.ndarray):
        return None
    if arr.dtype.kind == "b":
        if func_name in ("min", "max"):
            # min/max over bools must return False/True, not 0/1.
            return None
        return arr.astype(np.int64)
    if arr.dtype.kind in "iu":
        if func_name in ("sum", "avg") and arr.size:
            bound = max(abs(int(arr.min())), abs(int(arr.max())))
            # Sums that could wrap int64 must use Python's big ints;
            # avg additionally divides through float64, which stops
            # being exactly rounded once the sum can exceed 2**53.
            limit = _FLOAT_EXACT if func_name == "avg" else _INT64_SAFE
            if bound * arr.size >= limit:
                return None
        return arr
    if arr.dtype.kind == "f":
        if func_name in ("min", "max") and np.isnan(arr).any():
            # Python min/max over NaNs is order-dependent; defer.
            return None
        return arr
    return None


def _eval_merge(expr: Merge, leaves, memo) -> Relation:
    stale = _eval(expr.stale, leaves, memo)
    change = _eval(expr.change, leaves, memo)
    out_schema = stale.schema
    key_idx_stale = stale.schema.indexes(expr.key)
    key_idx_change = change.schema.indexes(expr.key)

    change_by_key = {}
    for row in change.rows:
        change_by_key[tuple(row[i] for i in key_idx_change)] = row

    has_explicit_count = GROUP_COUNT in stale.schema
    grp_idx_change = (
        change.schema.index(GROUP_COUNT) if GROUP_COUNT in change.schema else None
    )

    # Resolve combiner plans: (out position, mode, change position).
    plans = []
    ratio_plans = []
    for comb in expr.combiners:
        out_pos = stale.schema.index(comb.column)
        if comb.mode == "group":
            continue
        if comb.mode == "ratio":
            num_pos = stale.schema.index(comb.args[0])
            den_pos = stale.schema.index(comb.args[1])
            ratio_plans.append((out_pos, num_pos, den_pos))
            continue
        change_pos = change.schema.index(comb.column)
        plans.append((out_pos, comb.mode, change_pos))

    def combine_row(old_row, change_row):
        out = list(old_row)
        for out_pos, mode, change_pos in plans:
            delta = change_row[change_pos]
            old = out[out_pos]
            if mode == "add":
                out[out_pos] = (old or 0) + (delta or 0)
            elif mode == "replace":
                out[out_pos] = delta if delta is not None else old
            elif mode == "min":
                if delta is not None:
                    out[out_pos] = delta if old is None else min(old, delta)
            elif mode == "max":
                if delta is not None:
                    out[out_pos] = delta if old is None else max(old, delta)
        for out_pos, num_pos, den_pos in ratio_plans:
            den = out[den_pos]
            out[out_pos] = (out[num_pos] / den) if den else float("nan")
        return tuple(out)

    def insert_row(change_row):
        # A missing row: synthesize a stale-side identity row, then combine.
        old = [None] * len(out_schema)
        for s_i, c_i in zip(key_idx_stale, key_idx_change):
            old[s_i] = change_row[c_i]
        return combine_row(tuple(old), change_row)

    grp_idx_stale = stale.schema.index(GROUP_COUNT) if has_explicit_count else None
    drop = expr.drop_empty

    rows = []
    seen = set()
    for row in stale.rows:
        key = tuple(row[i] for i in key_idx_stale)
        change_row = change_by_key.get(key)
        if change_row is None:
            rows.append(row)
            continue
        seen.add(key)
        merged = combine_row(row, change_row)
        if not drop:
            rows.append(merged)
            continue
        if has_explicit_count:
            support = merged[grp_idx_stale]
        elif grp_idx_change is not None:
            # SPJ views: stale rows have implicit multiplicity one.
            support = 1 + (change_row[grp_idx_change] or 0)
        else:
            support = 1
        if support is None or support > 0:
            rows.append(merged)
    for key, change_row in change_by_key.items():
        if key in seen:
            continue
        merged = insert_row(change_row)
        if not drop:
            rows.append(merged)
            continue
        if has_explicit_count:
            support = merged[grp_idx_stale]
        elif grp_idx_change is not None:
            support = change_row[grp_idx_change] or 0
        else:
            support = 1
        if support is None or support > 0:
            rows.append(merged)
    return Relation(out_schema, rows, key=expr.key)
