"""The database substrate: named base relations plus pending deltas.

A :class:`Database` is the collection D = {R_i} of paper §3.1 together
with its delta relations ∂D.  It exposes *leaf resolvers* (plain mappings
from name to :class:`Relation`) used by the expression evaluator:

* :meth:`leaves` — base relations in their **stale** state (as of the
  last maintenance), plus ``R__ins`` / ``R__del`` delta leaves, plus any
  registered materialized views.  Maintenance strategies and cleaning
  expressions evaluate against this mapping.
* :meth:`fresh_leaves` — base relations with pending deltas applied
  (the ground truth S' is a view definition evaluated over these).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.algebra.relation import Relation
from repro.db.deltas import DeltaSet, deletions_name, insertions_name
from repro.errors import MaintenanceError


class Database:
    """Named base relations, pending deltas, and registered views."""

    def __init__(self):
        self._relations: Dict[str, Relation] = {}
        self.deltas = DeltaSet()
        self._views: Dict[str, Relation] = {}

    # ------------------------------------------------------------------
    # Base relation management
    # ------------------------------------------------------------------
    def add_relation(self, rel: Relation) -> Relation:
        """Register a base relation (must be named and keyed)."""
        if not rel.name:
            raise MaintenanceError("base relations must be named")
        if not rel.key:
            raise MaintenanceError(
                f"base relation {rel.name!r} must declare a primary key "
                "(paper §3.1: add an increasing integer column if needed)"
            )
        self._relations[rel.name] = rel
        return rel

    def relation(self, name: str) -> Relation:
        """Look up a base relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise MaintenanceError(f"no base relation named {name!r}") from None

    def relation_names(self) -> List[str]:
        """Names of all registered base relations."""
        return list(self._relations)

    # ------------------------------------------------------------------
    # Updates (queued as deltas; folded in by apply_deltas)
    # ------------------------------------------------------------------
    def insert(self, name: str, rows: Iterable[tuple]) -> None:
        """Queue insertions into base relation ``name``."""
        self.deltas.for_relation(self.relation(name)).insert(rows)

    def delete(self, name: str, rows: Iterable[tuple]) -> None:
        """Queue deletions (full rows) from base relation ``name``."""
        self.deltas.for_relation(self.relation(name)).delete(rows)

    def effective_key_index(self, name: str) -> Dict[tuple, tuple]:
        """Key -> row as of *now*, with pending deltas overlaid.

        Updates and keyed deletes issued mid-period must resolve against
        the current effective rows, not the stale base — otherwise two
        updates of the same key both delete the original record and both
        insertions survive, breaking the telescoped delete+insert pair.
        """
        rel = self.relation(name)
        index = rel.key_index()
        delta = self.deltas.get(name)
        if delta is not None and not delta.is_empty():
            for k, row in delta.pending_key_overlay(rel.key_indexes()).items():
                if row is None:
                    index.pop(k, None)
                else:
                    index[k] = row
        return index

    def delete_by_key(self, name: str, keys: Iterable[tuple]) -> None:
        """Queue deletions given key values; rows are looked up in the
        effective (pending-delta-applied) state."""
        index = self.effective_key_index(name)
        rows = []
        for k in keys:
            k = tuple(k)
            if k not in index:
                raise MaintenanceError(f"{name!r} has no record with key {k!r}")
            rows.append(index[k])
        self.delete(name, rows)

    def update(self, name: str, new_rows: Iterable[tuple]) -> None:
        """Queue updates: modeled as deletion of the old row + insertion
        of the new one (paper §3.1).

        The old row is resolved against the effective state, so repeated
        updates of one key telescope: the delta nets to one deletion of
        the original record plus one insertion of the final version.
        """
        rel = self.relation(name)
        index = self.effective_key_index(name)
        key_idx = rel.key_indexes()
        old_rows, ins_rows = [], []
        for row in new_rows:
            row = tuple(row)
            k = tuple(row[i] for i in key_idx)
            if k not in index:
                raise MaintenanceError(f"{name!r} has no record with key {k!r}")
            old_rows.append(index[k])
            ins_rows.append(row)
            index[k] = row  # updates within one batch telescope too
        self.delete(name, old_rows)
        self.insert(name, ins_rows)

    def is_stale(self) -> bool:
        """True when any delta relation is non-empty (paper's staleness)."""
        return not self.deltas.is_empty()

    def apply_deltas(self, names: Optional[Sequence[str]] = None) -> None:
        """Fold pending deltas into the base relations and clear them.

        Called at the end of a maintenance period, after every registered
        view has been brought up to date (or cleaned).
        """
        targets = names if names is not None else self.deltas.dirty_relations()
        for name in targets:
            delta = self.deltas.get(name)
            if delta is None or delta.is_empty():
                continue
            rel = self.relation(name)
            deleted = set(delta.deleted)
            rows = [r for r in rel.rows if r not in deleted]
            rows.extend(delta.inserted)
            self._relations[name] = Relation(
                rel.schema, rows, key=rel.key, name=rel.name
            )
            delta.base = self._relations[name]
            delta.clear()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def register_view_data(self, name: str, data: Relation) -> None:
        """Make a materialized view's rows visible as an evaluator leaf."""
        self._views[name] = data

    # ------------------------------------------------------------------
    # Leaf resolvers
    # ------------------------------------------------------------------
    def leaves(self) -> Dict[str, Relation]:
        """Stale base relations + delta leaves + materialized views."""
        out: Dict[str, Relation] = dict(self._relations)
        for name in self._relations:
            delta = self.deltas.get(name)
            base = self._relations[name]
            if delta is None:
                ins = Relation(base.schema, [], key=base.key)
                dele = Relation(base.schema, [], key=base.key)
            else:
                ins = delta.insertions_relation()
                dele = delta.deletions_relation()
            out[insertions_name(name)] = ins
            out[deletions_name(name)] = dele
        out.update(self._views)
        return out

    def fresh_leaves(self) -> Dict[str, Relation]:
        """Base relations with pending deltas applied (ground truth)."""
        out: Dict[str, Relation] = {}
        for name, rel in self._relations.items():
            delta = self.deltas.get(name)
            if delta is None or delta.is_empty():
                out[name] = rel
                continue
            deleted = set(delta.deleted)
            rows = [r for r in rel.rows if r not in deleted]
            rows.extend(delta.inserted)
            out[name] = Relation(rel.schema, rows, key=rel.key, name=name)
        out.update(self._views)
        return out

    def __getitem__(self, name: str) -> Relation:
        return self.leaves()[name]

    def __contains__(self, name: str) -> bool:
        return name in self._relations or name in self._views
