"""Hash partitioning of relations and deltas by maintenance key.

The paper's maintenance strategies M(S, D, ∂D) are ordinary relational
expressions (§3.1), which makes them partitionable: hash every base
relation, its delta relations ∆R/∇R, and the stale view on the same
*maintenance key* (group key for SPJA views, view/join key for SPJ) and
each shard can run M independently — the per-shard results concatenate
into exactly the single-shard answer (see ``docs/sharding.md`` for the
safety argument and :mod:`repro.distributed.shard` for the planner that
decides which relations partition and which replicate).

The shard routing function must be *value-deterministic across
relations*: a delta row and the view row of the same group have to land
in the same shard even though they are hashed through different code
paths (a vectorized pass over an int64 column vs. a per-row Python
loop).  :func:`shard_hash` therefore defines one 64-bit mixer with a
numpy implementation that is bit-identical to the scalar one, and the
scalar path normalizes bools/integral floats to int before mixing.
"""

from __future__ import annotations

import zlib
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algebra.relation import Relation
from repro.caches import register_cache
from repro.errors import MaintenanceError

_MASK64 = (1 << 64) - 1
#: Multipliers of the 64-bit mix (splitmix64 finalizer constants).
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB
#: Column-combination multiplier (same role as CPython's tuple hash).
_COMBINE = 0x9E3779B97F4A7C15

#: Cache key prefix under which per-relation partitions are memoized on
#: ``Relation.sample_cache()`` (sound: relations are immutable).
_PARTITION_CACHE = "__shards__"

#: Generation counter baked into every partition-memo key.  The memo
#: entries live on each relation's own sample cache (there is no global
#: list of live relations to walk), so the registry-driven "drop every
#: partition memo" operation is a generation bump: every existing entry
#: becomes unreachable at once and falls out of memory with its
#: relation.  Per-relation eviction stays available via
#: :func:`clear_partition_cache`.
_PARTITION_GENERATION = [0]


def invalidate_partition_memos() -> int:
    """Orphan every memoized partition library-wide; returns the new
    generation.  Partitions are pure functions of ``(rows, cols, n)``,
    so this is never needed for correctness — it exists for cold-state
    benchmarks and the central cache registry's full drain."""
    _PARTITION_GENERATION[0] += 1
    return _PARTITION_GENERATION[0]


def _drop_partition_memos() -> None:
    invalidate_partition_memos()


register_cache(
    "db.sharding.partition_memo",
    clear=_drop_partition_memos,
    invalidate_on=(),
    description=(
        "per-relation hash-partition memos (generation-keyed; entries "
        "live on each immutable relation's sample cache)"
    ),
)


def _mix64(v: int) -> int:
    """splitmix64 finalizer on a 64-bit unsigned value."""
    v &= _MASK64
    v = ((v ^ (v >> 30)) * _MIX_A) & _MASK64
    v = ((v ^ (v >> 27)) * _MIX_B) & _MASK64
    return v ^ (v >> 31)


def _scalar_hash(value) -> int:
    """64-bit hash of one cell value (must agree with the numpy path)."""
    if isinstance(value, bool):
        return _mix64(int(value))
    if isinstance(value, (int, np.integer)):
        return _mix64(int(value))
    if isinstance(value, (float, np.floating)):
        # Integral floats hash like the equal int so mixed int/float key
        # columns (5 vs 5.0) still route together, matching dict equality.
        f = float(value)
        if f.is_integer() and abs(f) < 2**63:
            return _mix64(int(f))
        return _mix64(zlib.crc32(repr(f).encode()))
    if isinstance(value, str):
        return _mix64(zlib.crc32(value.encode()))
    if value is None:
        return _mix64(0x6E6F6E65)  # b"none"
    return _mix64(zlib.crc32(repr(value).encode()))


def shard_hash(values: Sequence) -> int:
    """Order-sensitive 64-bit hash of a key-value tuple."""
    h = 0
    for v in values:
        h = ((h * _COMBINE) + _scalar_hash(v)) & _MASK64
    return h


def _vector_hash(arr: np.ndarray) -> Optional[np.ndarray]:
    """Vectorized :func:`_scalar_hash` for one column, or None to fall back.

    Only integer/bool dtypes qualify (their scalar path is pure int
    mixing); everything else routes through the per-row loop.
    """
    if arr.dtype.kind not in "iub":
        return None
    v = arr.astype(np.uint64, copy=False) if arr.dtype.kind != "i" else (
        arr.astype(np.int64, copy=False).view(np.uint64)
    )
    a = np.uint64(_MIX_A)
    b = np.uint64(_MIX_B)
    v = (v ^ (v >> np.uint64(30))) * a
    v = (v ^ (v >> np.uint64(27))) * b
    return v ^ (v >> np.uint64(31))


def shard_ids(rel: Relation, cols: Sequence[str], n: int) -> np.ndarray:
    """The shard index of every row of ``rel``, hashing ``cols``.

    Integer key columns are mixed in one numpy pass; any column that does
    not vectorize drops the whole computation to the (bit-identical)
    scalar loop so routing never depends on which path ran.
    """
    if n <= 0:
        raise MaintenanceError(f"shard count must be positive: {n}")
    m = len(rel.rows)
    if m == 0:
        return np.empty(0, dtype=np.intp)
    combine = np.uint64(_COMBINE)
    h = np.zeros(m, dtype=np.uint64)
    vectorized = True
    columnar = rel.columnar()
    for c in cols:
        ch = _vector_hash(columnar.array(c))
        if ch is None:
            vectorized = False
            break
        h = h * combine + ch
    if vectorized:
        return (h % np.uint64(n)).astype(np.intp)
    idx = rel.schema.indexes(cols)
    return np.fromiter(
        (shard_hash(tuple(row[i] for i in idx)) % n for row in rel.rows),
        dtype=np.intp,
        count=m,
    )


def partition_relation(rel: Relation, cols: Sequence[str], n: int) -> List[Relation]:
    """Hash-partition ``rel`` into ``n`` relations on ``cols``.

    Every row lands in exactly one shard.  Partitions are memoized on the
    relation's cache (relations are immutable), so re-partitioning the
    same base data across maintenance rounds is free and the per-shard
    relations keep their own columnar/sample caches warm.  The memo also
    makes partitions *identity-stable*: the same base relation always
    yields the same partition objects, which is what lets the
    shared-memory transport (:mod:`repro.distributed.transport`) keep an
    unchanged leaf's exported columns resident across rounds instead of
    re-shipping them.

    ``cols`` is normalized to a tuple up front: the memo key must not
    depend on the sequence type the caller happened to pass (a list
    would not even be hashable), and a list and tuple of the same
    columns must hit the same memo entry.
    """
    cols = tuple(cols)
    cache = rel.sample_cache()
    cache_key = (_PARTITION_CACHE, _PARTITION_GENERATION[0], cols, n)
    hit = cache.get(cache_key)
    if hit is not None:
        return hit
    if n == 1:
        parts = [rel]
    elif not rel.rows:
        parts = [
            Relation(rel.schema, [], key=rel.key, name=rel.name)
            for _ in range(n)
        ]
    else:
        # Stable argsort by shard id, then slice: one C-speed gather pass
        # instead of n Python append loops (partitioning sits on the
        # serial path of every sharded maintenance round).
        ids = shard_ids(rel, cols, n)
        order = np.argsort(ids, kind="stable")
        rows = rel.rows
        if len(order) == 1:
            ordered = [rows[order[0]]]
        else:
            ordered = list(itemgetter(*order)(rows))
        bounds = np.searchsorted(ids[order], np.arange(1, n)).tolist()
        parts = [
            Relation(rel.schema, ordered[a:b], key=rel.key, name=rel.name)
            for a, b in zip([0] + bounds, bounds + [len(ordered)])
        ]
    cache[cache_key] = parts
    return parts


def clear_partition_cache(rel: Relation) -> None:
    """Drop memoized partitions of one relation (benchmark cold-state).

    The relation's sample cache is shared with other memo families
    (hash-sample results keyed by arbitrary tuples), so only entries
    tagged with the partition prefix are touched — and only tuple keys
    are inspected at all, since a non-tuple key cannot be ours.
    """
    cache = rel.sample_cache()
    for key in [
        k
        for k in cache
        if isinstance(k, tuple) and k and k[0] == _PARTITION_CACHE
    ]:
        del cache[key]


class GenerationTracker:
    """Per-slot generation counters keyed on relation identity.

    A *slot* names one logical position in the sharded leaf environment
    — ``(leaf_name, shard_index, shard_count)`` — and its generation
    bumps exactly when a *different* relation object occupies it.
    Relations are immutable library-wide, so object identity is the
    change detector: an untouched base leaf keeps its object (and its
    memoized partitions, see :func:`partition_relation`) across
    maintenance rounds, while a maintained view or a fresh delta is a
    new object every round.  The shared-memory transport stamps each
    export's manifest with its slot generation; the *mechanism* that
    invalidates a worker's cached attachment is the fresh (globally
    unique) segment name a bumped slot gets, while the generation is
    the human-readable change count — how many times this slot has
    actually re-shipped — surfaced for tests and accounting.

    The tracker holds strong references to the current occupants —
    intentionally: the transport keeps their exported columns resident,
    and identity comparison is only sound while the object cannot be
    garbage-collected and its ``id`` reused.
    """

    def __init__(self):
        self._slots: Dict[tuple, Tuple[Relation, int]] = {}

    def generation(self, slot: tuple, rel: Relation) -> Tuple[int, bool]:
        """``(generation, changed)`` for ``rel`` occupying ``slot``."""
        prev = self._slots.get(slot)
        if prev is not None and prev[0] is rel:
            return prev[1], False
        gen = prev[1] + 1 if prev is not None else 0
        self._slots[slot] = (rel, gen)
        return gen, True

    def forget(self, slot: tuple) -> None:
        """Drop one slot (its next occupant restarts the count)."""
        self._slots.pop(slot, None)

    def clear(self) -> None:
        self._slots.clear()


def partition_delta(
    delta, cols: Sequence[str], n: int
) -> List[Tuple[Relation, Relation]]:
    """Partition one base relation's ∆R/∇R into per-shard pairs.

    Routing uses the same hash as :func:`partition_relation`, so a
    delta row always lands in the shard holding its base partition.
    """
    ins = partition_relation(delta.insertions_relation(), cols, n)
    dels = partition_relation(delta.deletions_relation(), cols, n)
    return list(zip(ins, dels))


def partition_leaves(
    leaves: Dict[str, Relation],
    partitioned: Dict[str, Tuple[str, ...]],
    n: int,
) -> List[Dict[str, Relation]]:
    """Per-shard leaf resolvers: partition the named relations, share the rest.

    ``partitioned`` maps leaf name -> the columns to hash it on.  Names
    absent from the mapping are *replicated*: every shard sees the same
    relation object (no copy).
    """
    parts: Dict[str, List[Relation]] = {}
    for name, cols in partitioned.items():
        rel = leaves.get(name)
        if rel is None:
            raise MaintenanceError(f"cannot partition unknown leaf {name!r}")
        parts[name] = partition_relation(rel, cols, n)
    out = []
    for s in range(n):
        shard_env = dict(leaves)
        for name, shards in parts.items():
            shard_env[name] = shards[s]
        out.append(shard_env)
    return out
