"""Freshness-budget scheduling of SVC cleaning rounds.

The serving layer cannot clean every view on every tick — cleaning costs
time proportional to the sampling ratio, and the whole point of SVC is
spending a *bounded* maintenance budget for bounded error.  The
:class:`FreshnessScheduler` decides, each tick, which views to clean and
at what sampling ratio:

* **Priority** — views are ordered by ``weight · (staleness / SLA
  target) · (1 + traffic)``: a view twice as far past its freshness SLA,
  or queried twice as often, gets cleaned first.  Views within their SLA
  are not scheduled at all (cleaning a fresh view is wasted budget).
* **Budget** — the tick carries a wall-clock budget ``B`` (seconds).
  Cleaning cost scales roughly linearly with the sampling ratio (the
  cleaning expression touches ``m·|S|`` sampled rows plus the delta
  join), so the scheduler charges each round its predicted cost and
  stops admitting full-ratio rounds when the budget runs out.
* **Degradation** — rather than skip a view that is past SLA, the
  scheduler *degrades* it: the ratio shrinks to fit the remaining
  budget, ``m = clamp(m₀ · B_remaining / C(m₀), m_min, m₀)``, trading
  estimate variance for freshness exactly as §7.6.2's error/ratio
  trade-off prescribes.  Only when even ``m_min`` does not fit is the
  view skipped (recorded, so the next tick's staleness term boosts it).
* **Escalation** — sampled cleaning never folds deltas into the base
  relations, so pending updates accumulate until a *full* maintenance
  round runs.  When any view's pending-row fraction exceeds its SLA's
  ``max_pending_fraction``, the plan requests full maintenance (which
  maintains every view and applies the global deltas).  Failure
  escalates the same way: a view whose cleaning rounds have failed
  ``max_round_failures`` consecutive times stops burning its retry
  budget on the same fault and gets a full re-anchoring period instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import EstimationError
from repro.reliability.faults import (
    SERVING_SCHEDULE,
    InjectedFault,
    fault_check,
)


@dataclass(frozen=True)
class FreshnessSLA:
    """Per-view service levels the scheduler honors.

    ``max_staleness_s`` is the freshness target: the view should get a
    cleaning round at least this often (measured from its last published
    epoch).  ``target_ratio`` / ``min_ratio`` bracket the accuracy SLA:
    the scheduler cleans at ``target_ratio`` when the budget allows and
    never degrades below ``min_ratio``.  ``max_pending_fraction`` is the
    escalation threshold for full maintenance; ``max_round_failures``
    is the failure-escalation threshold — after this many *consecutive*
    failed cleaning rounds the scheduler requests a full maintenance
    period (a re-anchor from scratch) instead of retrying sampled
    cleaning against possibly corrupt round state forever.
    """

    max_staleness_s: float = 1.0
    target_ratio: float = 0.1
    min_ratio: float = 0.01
    weight: float = 1.0
    max_pending_fraction: float = 0.25
    max_round_failures: int = 3

    def __post_init__(self):
        if not (0.0 < self.min_ratio <= self.target_ratio <= 1.0):
            raise EstimationError(
                f"need 0 < min_ratio <= target_ratio <= 1; got "
                f"{self.min_ratio!r} / {self.target_ratio!r}"
            )
        if self.max_staleness_s <= 0 or self.weight <= 0:
            raise EstimationError(
                "max_staleness_s and weight must be positive"
            )
        if self.max_round_failures < 1:
            raise EstimationError(
                f"max_round_failures must be >= 1: {self.max_round_failures}"
            )


@dataclass
class ViewLoad:
    """One view's observed state, the scheduler's per-tick input."""

    name: str
    sla: FreshnessSLA
    #: Seconds since this view's last published epoch.
    staleness_s: float
    #: Pending delta rows touching the view / current view rows.
    pending_fraction: float
    #: Smoothed queries-per-tick observed against this view.
    traffic: float
    #: Predicted cost (seconds) of one cleaning round at
    #: ``target_ratio``, supplied by the server's spike-clamped EWMA
    #: predictor (:class:`repro.tuning.predictor.CostEwma`) — one
    #: pathological round cannot inflate it past every future budget,
    #: so a spike degrades the next round instead of starving the view.
    predicted_cost_s: float
    #: Consecutive failed cleaning rounds (0 while healthy).
    failures: int = 0

    def priority(self) -> float:
        """Staleness × traffic urgency, SLA-weighted.

        A failing view gets a boost per consecutive failure: its epoch
        is aging faster than its ``last_round_t`` suggests, and retrying
        it ahead of healthy views is what keeps the failure bounded.
        """
        urgency = self.staleness_s / self.sla.max_staleness_s
        boost = 1.0 + max(self.failures, 0)
        return (self.sla.weight * urgency * boost
                * (1.0 + max(self.traffic, 0.0)))


@dataclass(frozen=True)
class PlannedRound:
    """One admitted cleaning round."""

    view: str
    ratio: float
    degraded: bool
    priority: float
    charged_s: float


@dataclass
class TickPlan:
    """What one scheduler tick decided."""

    rounds: List[PlannedRound] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)
    budget_s: float = 0.0
    spent_s: float = 0.0
    full_maintenance: bool = False

    @property
    def remaining_s(self) -> float:
        return max(self.budget_s - self.spent_s, 0.0)


class FreshnessScheduler:
    """Budgeted, SLA-aware admission of cleaning rounds.

    Stateless between ticks apart from its default budget: the caller
    owns the per-view observations (:class:`ViewLoad`), which keeps the
    policy a pure, unit-testable function of its inputs.
    """

    def __init__(self, budget_s: float = 0.25):
        if budget_s <= 0:
            raise EstimationError(f"tick budget must be positive: {budget_s}")
        self.budget_s = float(budget_s)

    def plan(
        self, loads: Sequence[ViewLoad], budget_s: Optional[float] = None
    ) -> TickPlan:
        """Decide this tick's rounds given per-view observations."""
        fault = fault_check(SERVING_SCHEDULE)
        if fault is not None:
            raise InjectedFault(SERVING_SCHEDULE,
                                detail=fault.detail or "injected scheduler "
                                                       "failure")
        budget = float(budget_s) if budget_s is not None else self.budget_s
        plan = TickPlan(budget_s=budget)

        for load in loads:
            if load.pending_fraction > load.sla.max_pending_fraction:
                # Sampled cleaning can no longer keep the error bounded
                # at an acceptable ratio — the period must be closed.
                plan.full_maintenance = True
            if load.failures >= load.sla.max_round_failures:
                # Bounded retries exhausted: stop re-running sampled
                # cleaning into the same fault and re-anchor fully.
                plan.full_maintenance = True

        due = [ld for ld in loads if ld.staleness_s >= ld.sla.max_staleness_s]
        for load in sorted(due, key=lambda ld: ld.priority(), reverse=True):
            sla = load.sla
            cost = max(load.predicted_cost_s, 0.0)
            remaining = plan.remaining_s
            if cost <= remaining or cost == 0.0:
                plan.rounds.append(PlannedRound(
                    view=load.name, ratio=sla.target_ratio, degraded=False,
                    priority=load.priority(), charged_s=cost,
                ))
                plan.spent_s += cost
                continue
            # Behind budget: degrade the ratio to fit what is left.
            # Cost is ~linear in the ratio, so the affordable ratio is
            # m0 scaled by the budget fraction still available.
            ratio = sla.target_ratio * (remaining / cost)
            if ratio >= sla.min_ratio and remaining > 0.0:
                charged = cost * (ratio / sla.target_ratio)
                plan.rounds.append(PlannedRound(
                    view=load.name, ratio=ratio, degraded=True,
                    priority=load.priority(), charged_s=charged,
                ))
                plan.spent_s += charged
            else:
                plan.skipped.append((load.name, "budget exhausted"))
        return plan
