"""Statistics utilities: hashing families, Zipfian sampling, intervals."""

from repro.stats.hashing import (
    get_hash_family,
    linear_unit,
    set_hash_family,
    sha1_unit,
    unit_hash,
    unit_hash_batch,
)

__all__ = [
    "get_hash_family",
    "linear_unit",
    "set_hash_family",
    "sha1_unit",
    "unit_hash",
    "unit_hash_batch",
]
