"""Select-query correction — paper §12.1.2.

A predicated SELECT on a stale view returns rows that may be missing,
falsely included, or carrying out-of-date values.  Using the lineage that
primary keys provide, the clean sample corrects the stale selection:

* rows updated in the sample overwrite the stale result,
* new sampled rows are unioned in,
* sampled rows that disappeared are removed,

and three count-rewrites of the query bound the number of added, updated
and deleted rows that the sample implies for the full view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.algebra.predicates import Predicate
from repro.algebra.relation import Relation
from repro.core.confidence import Estimate, sum_se
from repro.errors import EstimationError

import numpy as np


@dataclass
class SelectResult:
    """A corrected selection plus approximation-error bounds."""

    rows: Relation
    added: Estimate
    updated: Estimate
    deleted: Estimate


def svc_select(
    stale_view: Relation,
    dirty_sample: Relation,
    clean_sample: Relation,
    predicate: Predicate,
    ratio: float,
    key: Sequence[str] = None,
    confidence: float = 0.95,
) -> SelectResult:
    """Correct ``SELECT * FROM view WHERE predicate`` (paper §12.1.2)."""
    if key is None:
        key = clean_sample.key or stale_view.key
    if not key:
        raise EstimationError("select correction requires the view key")

    pred_stale = predicate.bind(stale_view.schema)
    pred_clean = predicate.bind(clean_sample.schema)
    pred_dirty = predicate.bind(dirty_sample.schema)

    key_idx = stale_view.schema.indexes(key)

    stale_hits = {
        tuple(r[i] for i in key_idx): r for r in stale_view.rows if pred_stale(r)
    }
    clean_hits = {
        tuple(r[i] for i in key_idx): r
        for r in clean_sample.rows
        if pred_clean(r)
    }
    dirty_keys = {tuple(r[i] for i in key_idx) for r in dirty_sample.rows}
    dirty_hit_keys = {
        tuple(r[i] for i in key_idx) for r in dirty_sample.rows if pred_dirty(r)
    }
    clean_keys = {tuple(r[i] for i in key_idx) for r in clean_sample.rows}

    added = updated = deleted = 0
    out = dict(stale_hits)
    for k, row in clean_hits.items():
        if k in stale_hits:
            if stale_hits[k] != row:
                out[k] = row  # overwrite out-of-date values
                updated += 1
        else:
            out[k] = row  # union in newly selected rows
            added += 1
    # Sampled keys that no longer satisfy the selection (value drifted out
    # of the predicate) or vanished from the view entirely.
    for k in dirty_hit_keys:
        if k not in clean_hits and k in out:
            del out[k]
            deleted += 1
    # Keys sampled in the dirty view that disappeared from the clean
    # sample altogether are superfluous rows.
    for k in (dirty_keys - clean_keys) & set(out):
        del out[k]
        deleted += 1

    corrected = Relation(
        stale_view.schema, list(out.values()), key=stale_view.key,
        name=stale_view.name,
    )

    def scaled_count(n: int) -> Estimate:
        values = np.full(n, 1.0 / ratio)
        return Estimate(
            float(n / ratio),
            sum_se(values, ratio),
            confidence,
            method="SVC+SELECT",
            sample_rows=len(clean_sample),
        )

    return SelectResult(
        rows=corrected,
        added=scaled_count(added),
        updated=scaled_count(updated),
        deleted=scaled_count(deleted),
    )
