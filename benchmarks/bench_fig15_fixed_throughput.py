"""Fig 15 — max error vs sampling ratio at fixed cluster throughput.

Error curves are calibrated from real SVC runs on the Conviva views V2
and V5; the cluster timing comes from the batch model.  The paper finds
interior optima (m ≈ 3% for V2, ≈ 6% for V5) where SVC+IVM beats IVM.
"""

import numpy as np
from conftest import run_once

from repro.experiments import fig15_fixed_throughput_error


def _check(result):
    svc = np.array(result.column("svc_ivm_max_error_pct"))
    ivm = np.array(result.column("ivm_max_error_pct"))
    finite = np.isfinite(svc)
    # Paper shape: at its optimum, SVC+IVM beats periodic IVM alone.
    assert svc[finite].min() < ivm[0]


def test_fig15_v2(benchmark, record_result):
    result = run_once(benchmark, fig15_fixed_throughput_error,
                      view_name="V2", n_records=12_000)
    record_result(result)
    _check(result)


def test_fig15_v5(benchmark, record_result):
    result = run_once(benchmark, fig15_fixed_throughput_error,
                      view_name="V5", n_records=12_000)
    record_result(result)
    _check(result)
