"""Unit tests for the hash-partition primitives (repro.db.sharding)."""

import numpy as np
import pytest

from repro.algebra import Relation, Schema
from repro.db import Database, partition_delta, partition_relation, shard_ids
from repro.db.sharding import _scalar_hash, shard_hash
from repro.errors import MaintenanceError


@pytest.fixture
def rel():
    return Relation(
        Schema(["id", "grp", "name"]),
        [(i, i % 5, f"n{i}") for i in range(40)],
        key=("id",), name="R",
    )


class TestShardHash:
    def test_deterministic(self):
        assert shard_hash((1, "a")) == shard_hash((1, "a"))
        assert shard_hash((1, "a")) != shard_hash(("a", 1))

    def test_value_types(self):
        for v in (0, -7, 2**70, True, 1.5, "x", None, (1, 2)):
            assert 0 <= _scalar_hash(v) < 2**64

    def test_integral_float_routes_like_int(self):
        # dict equality treats 5 == 5.0; routing must agree.
        assert _scalar_hash(5) == _scalar_hash(5.0)
        assert _scalar_hash(True) == _scalar_hash(1)

    def test_vectorized_matches_scalar(self):
        """The numpy mixer must be bit-identical to the scalar path.

        The same key values routed through an int64 column (vectorized
        pass) and through the per-row :func:`shard_hash` loop must land
        in the same shards — cross-relation routing consistency (a delta
        row vs. its base partition) depends on it.
        """
        values = [0, 1, -1, 7, -12345, 2**40, -(2**40), 2**62]
        int_rel = Relation(Schema(["k"]), [(v,) for v in values])
        assert int_rel.columnar().array("k").dtype.kind == "i"
        ids_vec = shard_ids(int_rel, ("k",), 13)
        assert list(ids_vec) == [shard_hash((v,)) % 13 for v in values]

    def test_scalar_fallback_on_mixed_columns(self):
        # A huge int forces an object column -> per-row loop; routing of
        # the ordinary values must not change.
        values = [0, 1, -1, 7, -12345, 2**40]
        obj_rel = Relation(Schema(["k"]), [(v,) for v in values + [2**70]])
        assert obj_rel.columnar().array("k").dtype.kind == "O"
        ids = shard_ids(obj_rel, ("k",), 13)
        assert list(ids[:-1]) == [shard_hash((v,)) % 13 for v in values]

    def test_multi_column_consistency(self):
        values = [(i, i * 3 - 7) for i in range(50)]
        int_rel = Relation(Schema(["a", "b"]), values)
        ids = shard_ids(int_rel, ("a", "b"), 7)
        assert list(ids) == [shard_hash(v) % 7 for v in values]


class TestPartitionRelation:
    def test_partition_is_exact_cover(self, rel):
        parts = partition_relation(rel, ("grp",), 4)
        assert len(parts) == 4
        all_rows = [r for p in parts for r in p.rows]
        assert sorted(all_rows) == sorted(rel.rows)

    def test_rows_route_by_key_value(self, rel):
        parts = partition_relation(rel, ("grp",), 3)
        for s, part in enumerate(parts):
            for row in part.rows:
                assert shard_hash((row[1],)) % 3 == s

    def test_schema_key_name_preserved(self, rel):
        parts = partition_relation(rel, ("grp",), 2)
        for p in parts:
            assert p.schema == rel.schema
            assert p.key == rel.key
            assert p.name == rel.name

    def test_single_shard_is_identity(self, rel):
        (only,) = partition_relation(rel, ("grp",), 1)
        assert only is rel

    def test_partitions_memoized(self, rel):
        first = partition_relation(rel, ("grp",), 4)
        assert partition_relation(rel, ("grp",), 4) is first
        assert partition_relation(rel, ("grp",), 2) is not first

    def test_list_cols_accepted_and_hit_tuple_memo(self, rel):
        """Regression: the memo key must not depend on the sequence type
        of ``cols``.  A list input used to be a hazard (an unnormalized
        list in the cache key is not even hashable), and a list and a
        tuple naming the same columns must share one memo entry."""
        first = partition_relation(rel, ("grp",), 4)
        assert partition_relation(rel, ["grp"], 4) is first
        via_list = partition_relation(rel, ["grp", "id"], 3)
        assert partition_relation(rel, ("grp", "id"), 3) is via_list
        # One memo entry per (cols, n), not per sequence type.
        partition_keys = [
            k for k in rel.sample_cache() if isinstance(k, tuple) and k
            and k[0] == "__shards__"
        ]
        assert len(partition_keys) == len(set(partition_keys)) == 2

    def test_clear_partition_cache_tolerates_foreign_keys(self, rel):
        """The sample cache is shared with other memo families; clearing
        partitions must skip — not crash on — keys it does not own."""
        from repro.db.sharding import clear_partition_cache

        partition_relation(rel, ["grp"], 4)
        cache = rel.sample_cache()
        cache[("attrs", 0.5, 7)] = "sample-memo"
        cache["plain-string-key"] = "other"
        cache[42] = "unsubscriptable"
        clear_partition_cache(rel)
        assert not any(
            isinstance(k, tuple) and k and k[0] == "__shards__" for k in cache
        )
        assert cache[("attrs", 0.5, 7)] == "sample-memo"
        assert cache["plain-string-key"] == "other"
        assert cache[42] == "unsubscriptable"
        # Partitioning after the clear recomputes fresh objects.
        assert partition_relation(rel, ("grp",), 4) is not None

    def test_empty_relation(self):
        empty = Relation(Schema(["a"]), [], key=("a",), name="E")
        parts = partition_relation(empty, ("a",), 5)
        assert [len(p) for p in parts] == [0] * 5

    def test_empty_shards_allowed(self):
        # Every row in one group: all but one shard must be empty.
        rel = Relation(Schema(["a"]), [(42,)] * 10)
        parts = partition_relation(rel, ("a",), 7)
        sizes = sorted(len(p) for p in parts)
        assert sizes == [0] * 6 + [10]

    def test_bad_shard_count(self, rel):
        with pytest.raises(MaintenanceError):
            shard_ids(rel, ("grp",), 0)


class TestPartitionDelta:
    def test_delta_routes_with_base(self, rel):
        db = Database()
        db.add_relation(rel)
        db.insert("R", [(100 + i, i % 5, f"x{i}") for i in range(10)])
        db.delete("R", [rel.rows[0], rel.rows[6]])
        delta = db.deltas.get("R")
        base_parts = partition_relation(rel, ("grp",), 3)
        delta_parts = partition_delta(delta, ("grp",), 3)
        assert len(delta_parts) == 3
        for s, (ins, dels) in enumerate(delta_parts):
            # Deleted rows sit in the same shard as their base partition.
            for row in dels.rows:
                assert row in base_parts[s].rows
            for row in ins.rows:
                assert shard_hash((row[1],)) % 3 == s

    def test_numpy_int_columns_route_like_python_ints(self):
        """Generator-produced np.int64 cells and plain ints co-route."""
        a = Relation(Schema(["k"]), [(np.int64(i),) for i in range(20)])
        b = Relation(Schema(["k"]), [(int(i),) for i in range(20)])
        assert list(shard_ids(a, ("k",), 5)) == list(shard_ids(b, ("k",), 5))


class TestGenerationTracker:
    def test_identity_is_the_change_detector(self):
        from repro.db.sharding import GenerationTracker

        tracker = GenerationTracker()
        a = Relation(Schema(["x"]), [(1,)], name="R")
        b = Relation(Schema(["x"]), [(1,)], name="R")  # equal, not identical
        slot = ("R", 0, 4)
        assert tracker.generation(slot, a) == (0, True)
        assert tracker.generation(slot, a) == (0, False)  # unchanged object
        assert tracker.generation(slot, b) == (1, True)  # new object bumps
        assert tracker.generation(slot, a) == (2, True)

    def test_slots_are_independent(self):
        from repro.db.sharding import GenerationTracker

        tracker = GenerationTracker()
        rel = Relation(Schema(["x"]), [(1,)], name="R")
        assert tracker.generation(("R", 0, 2), rel) == (0, True)
        assert tracker.generation(("R", 1, 2), rel) == (0, True)
        tracker.forget(("R", 0, 2))
        assert tracker.generation(("R", 0, 2), rel) == (0, True)
        assert tracker.generation(("R", 1, 2), rel) == (0, False)
