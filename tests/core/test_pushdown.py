"""Tests for hash push-down (paper Def 3, Theorem 1).

The decisive property: push-down never changes the evaluated sample.
Randomized expression trees exercise every rule, including the blocking
cases (nested aggregates, computed projections, attribute-spanning
joins).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    AggSpec,
    Aggregate,
    BaseRel,
    Difference,
    Hash,
    Intersect,
    Join,
    Output,
    Project,
    Relation,
    Schema,
    Select,
    Union,
    col,
    evaluate,
    func,
)
from repro.core.pushdown import (
    hashed_leaves,
    keyset_factory,
    push_down,
    push_down_with_report,
    push_filter,
)

LOG = Relation(
    Schema(["sessionId", "videoId"]),
    [(i, i % 7) for i in range(60)],
    key=("sessionId",), name="Log",
)
VIDEO = Relation(
    Schema(["videoId", "ownerId", "duration"]),
    [(v, v % 3, 10.0 + v) for v in range(7)],
    key=("videoId",), name="Video",
)
LEAVES = {"Log": LOG, "Video": VIDEO}


def assert_equivalent(expr):
    """Theorem 1: identical samples before and after push-down."""
    pushed = push_down(expr, LEAVES)
    raw = evaluate(expr, LEAVES)
    opt = evaluate(pushed, LEAVES)
    assert sorted(map(repr, raw.rows)) == sorted(map(repr, opt.rows))
    return pushed


class TestUnaryRules:
    def test_through_select(self):
        e = Hash(Select(BaseRel("Log"), col("videoId") > 2),
                 ("sessionId",), 0.4)
        pushed = assert_equivalent(e)
        assert isinstance(pushed, Select)

    def test_through_passthrough_project(self):
        e = Hash(Project(BaseRel("Log"), ["sessionId", "videoId"]),
                 ("sessionId",), 0.4)
        pushed = assert_equivalent(e)
        assert isinstance(pushed, Project)

    def test_through_renaming_project(self):
        proj = Project(BaseRel("Log"), [Output("sid", col("sessionId")),
                                        Output("videoId", col("videoId"))])
        e = Hash(proj, ("sid",), 0.4)
        pushed = assert_equivalent(e)
        assert isinstance(pushed, Project)
        assert isinstance(pushed.child, Hash)
        assert pushed.child.attrs == ("sessionId",)

    def test_blocked_by_computed_projection(self):
        proj = Project(BaseRel("Log"),
                       [Output("sid2", func("f", lambda x: x * 2,
                                            col("sessionId"))),
                        Output("videoId", col("videoId"))])
        e = Hash(proj, ("sid2",), 0.4)
        pushed, report = push_down_with_report(e, LEAVES)
        assert isinstance(pushed, Hash)  # stayed at the root
        assert report.blocked_at

    def test_through_group_by(self):
        agg = Aggregate(BaseRel("Log"), ["videoId"], [AggSpec("n", "count")])
        e = Hash(agg, ("videoId",), 0.5)
        pushed = assert_equivalent(e)
        assert isinstance(pushed, Aggregate)

    def test_blocked_by_non_group_attr(self):
        # The paper's nested-aggregate example: hashing the count value.
        agg = Aggregate(BaseRel("Log"), ["videoId"], [AggSpec("n", "count")])
        outer = Aggregate(agg, ["n"], [AggSpec("m", "count")])
        e = Hash(outer, ("n",), 0.5)
        pushed, report = push_down_with_report(e, LEAVES)
        assert report.blocked_at
        assert_equivalent(e)


class TestSetOpRules:
    def test_through_union(self):
        a = Select(BaseRel("Log"), col("videoId") < 3)
        b = Select(BaseRel("Log"), col("videoId") >= 3)
        e = Hash(Union(a, b), ("sessionId",), 0.5)
        pushed = assert_equivalent(e)
        assert isinstance(pushed, Union)

    def test_through_intersection(self):
        e = Hash(Intersect(BaseRel("Log"), BaseRel("Log")), ("sessionId",), 0.5)
        assert_equivalent(e)

    def test_through_difference(self):
        a = BaseRel("Log")
        b = Select(BaseRel("Log"), col("videoId") == 0)
        e = Hash(Difference(a, b), ("sessionId",), 0.5)
        assert_equivalent(e)


class TestJoinRules:
    def test_fk_join_pushes_to_fact_side(self):
        join = Join(BaseRel("Log"), BaseRel("Video"),
                    on=[("videoId", "videoId")], foreign_key=True)
        e = Hash(join, ("sessionId",), 0.5)
        pushed = assert_equivalent(e)
        assert hashed_leaves(pushed) == ["Log"]

    def test_equality_join_pushes_both_sides(self):
        join = Join(BaseRel("Log"), BaseRel("Video"),
                    on=[("videoId", "videoId")])
        e = Hash(join, ("videoId",), 0.5)
        pushed = assert_equivalent(e)
        assert sorted(hashed_leaves(pushed)) == ["Log", "Video"]

    def test_rename_across_equality_pair(self):
        other = Relation(Schema(["vid", "extra"]), [(v, v) for v in range(7)],
                         key=("vid",), name="Other")
        join = Join(BaseRel("Log"), BaseRel("Other"), on=[("videoId", "vid")])
        e = Hash(join, ("vid",), 0.5)
        pushed = push_down(e, {**LEAVES, "Other": other})
        raw = evaluate(e, {**LEAVES, "Other": other})
        opt = evaluate(pushed, {**LEAVES, "Other": other})
        assert sorted(raw.rows) == sorted(opt.rows)
        assert sorted(hashed_leaves(pushed)) == ["Log", "Other"]

    def test_spanning_attrs_block(self):
        join = Join(BaseRel("Log"), BaseRel("Video"),
                    on=[("videoId", "videoId")])
        e = Hash(join, ("sessionId", "ownerId"), 0.5)
        pushed, report = push_down_with_report(e, LEAVES)
        assert report.blocked_at
        assert_equivalent(e)

    def test_left_join_pushes_left_only_direct(self):
        join = Join(BaseRel("Log"), BaseRel("Video"),
                    on=[("videoId", "videoId")], how="left")
        e = Hash(join, ("sessionId",), 0.5)
        pushed = assert_equivalent(e)
        assert hashed_leaves(pushed) == ["Log"]

    def test_full_outer_join_on_collapsed_key(self):
        join = Join(BaseRel("Log"), BaseRel("Video"),
                    on=[("videoId", "videoId")], how="full")
        e = Hash(join, ("videoId",), 0.5)
        pushed = assert_equivalent(e)
        assert sorted(hashed_leaves(pushed)) == ["Log", "Video"]

    def test_full_outer_join_other_attrs_block(self):
        join = Join(BaseRel("Log"), BaseRel("Video"),
                    on=[("videoId", "videoId")], how="full")
        e = Hash(join, ("sessionId",), 0.5)
        pushed, report = push_down_with_report(e, LEAVES)
        assert report.blocked_at
        assert_equivalent(e)


class TestKeysetFilter:
    def test_keyset_filter_pushes_like_hash(self):
        join = Join(BaseRel("Log"), BaseRel("Video"),
                    on=[("videoId", "videoId")], foreign_key=True)
        agg = Aggregate(join, ["videoId"], [AggSpec("n", "count")])
        keys = {(0,), (3,)}
        pushed = push_filter(agg, ("videoId",), keyset_factory(keys), LEAVES)
        out = evaluate(pushed, LEAVES)
        assert {r[0] for r in out.rows} <= {0, 3}

    def test_keyset_filter_equivalence(self):
        join = Join(BaseRel("Log"), BaseRel("Video"),
                    on=[("videoId", "videoId")])
        keys = {(1,), (5,)}
        factory = keyset_factory(keys)
        pushed = push_filter(join, ("videoId",), factory, LEAVES)
        top = evaluate(factory(join, ("videoId",)), LEAVES)
        opt = evaluate(pushed, LEAVES)
        assert sorted(top.rows) == sorted(opt.rows)


# ----------------------------------------------------------------------
# Theorem 1 as a property over random trees.
# ----------------------------------------------------------------------
@st.composite
def random_tree(draw):
    """A random expression over Log/Video keyed by derivable attrs."""
    shape = draw(st.sampled_from(["select", "join", "agg", "union", "proj"]))
    if shape == "select":
        bound = draw(st.integers(0, 6))
        return Select(BaseRel("Log"), col("videoId") >= bound), ("sessionId",)
    if shape == "join":
        fk = draw(st.booleans())
        return (
            Join(BaseRel("Log"), BaseRel("Video"),
                 on=[("videoId", "videoId")], foreign_key=fk),
            ("sessionId",),
        )
    if shape == "agg":
        join = Join(BaseRel("Log"), BaseRel("Video"),
                    on=[("videoId", "videoId")])
        return (
            Aggregate(join, ["videoId"], [AggSpec("n", "count")]),
            ("videoId",),
        )
    if shape == "union":
        a = Select(BaseRel("Log"), col("videoId") < 3)
        b = Select(BaseRel("Log"), col("videoId") >= 2)
        return Union(a, b), ("sessionId",)
    return Project(BaseRel("Log"), ["sessionId", "videoId"]), ("sessionId",)


@given(random_tree(), st.floats(0.05, 0.95), st.integers(0, 4))
@settings(max_examples=40, deadline=None)
def test_theorem1_random_trees(tree_and_attrs, ratio, seed):
    tree, attrs = tree_and_attrs
    e = Hash(tree, attrs, ratio, seed)
    pushed = push_down(e, LEAVES)
    raw = evaluate(e, LEAVES)
    opt = evaluate(pushed, LEAVES)
    assert sorted(map(repr, raw.rows)) == sorted(map(repr, opt.rows))
