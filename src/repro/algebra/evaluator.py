"""Expression evaluation: a batch-native columnar engine over a row core.

:func:`evaluate` executes an expression tree bottom-up against a leaf
resolver (mapping relation name -> :class:`Relation`) and returns a new
:class:`Relation` whose primary key is derived per Def 2.

Every operator has a reference row-at-a-time implementation that defines
the semantics.  The hot operators additionally have *columnar* fast
paths which exchange :class:`~repro.algebra.columnar.ColumnarRelation`
batches end-to-end: σ and η outputs are index gathers over their child's
batch, Π passes column arrays through (or computes them vectorized),
equality ⋈ runs a vectorized hash join (key factorization via
``np.unique`` integer codes, grouped build offsets, fancy-indexed output
gathers), and γ reduces grouped columns ``reduceat``-style.  Row tuples
are only rebuilt at the evaluator boundary, when a consumer reads
``.rows`` — a multi-operator maintenance plan never rematerializes the
columns it already has.  Each fast path is abandoned (per operator, per
aggregate spec) whenever a value does not vectorize cleanly, so results
are identical to the row path by construction.
:func:`set_columnar_enabled` switches the fast paths off globally, which
the equivalence tests and the ``bench_vectorized_eval`` /
``bench_vectorized_join`` microbenchmarks use to compare the engines.

Implementation notes
--------------------
* Equality joins are hash joins (build on the right input).  The
  columnar path factorizes both sides' keys into dense integer codes
  (one ``np.unique`` over the concatenated key columns; multi-column
  keys re-factorize the stacked per-column codes), sorts the build side
  by code once, and expands each probe row's matches with pure index
  arithmetic — the output is a provider-backed batch whose columns are
  gathered on demand.  Object-dtype keys (``None``-bearing columns,
  exotic values), NaN keys, and int/float key pairs beyond 2**53 fall
  back to the reference row join; theta-only joins always use it.
* Outer joins pad the missing side with ``None`` (padded columns drop to
  object dtype, which downstream operators treat null-aware); equality
  columns that share a name on both sides collapse to a single output
  column which always carries the key value regardless of which side
  matched.
* The η operator filters rows whose key hash (``repro.stats.hashing``)
  falls below the sampling ratio.  The columnar path hashes all key
  columns in one batched pass; the row path memoizes per-key draws in a
  bounded, hash-family-aware cache (see :func:`hash_draw`).
* Shared subtree objects are evaluated once per :func:`evaluate` call
  (maintenance strategies deliberately share the fresh-version subtrees
  across change-table terms).
* :class:`Merge` implements the change-table merge: a full outer equality
  join on the view key followed by per-column combination, with emptied
  groups (support count driven to zero or below) removed — exactly the
  Π(S ⟗ change) maintenance step of paper Ex. 1.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.algebra.aggregates import get_aggregate
from repro.algebra.columnar import (
    ColumnarRelation,
    as_object_array,
    group_ids,
    grouped_starts,
)
from repro.algebra.expressions import (
    Aggregate,
    BaseRel,
    Difference,
    Expr,
    Hash,
    Intersect,
    Join,
    Merge,
    Project,
    Select,
    Union,
)
from repro.algebra.keys import derive_key
from repro.algebra.predicates import _FLOAT_EXACT, _INT64_SAFE, _int_bound
from repro.algebra.relation import Relation
from repro.algebra.schema import Schema
from repro.errors import EvaluationError, KeyDerivationError, SchemaError
from repro.stats.hashing import get_hash_family, linear_unit, unit_hash_batch

#: Hidden column carrying the group support count in aggregate views and
#: the net multiplicity in change tables.  Prefixed so user queries never
#: collide with it.
GROUP_COUNT = "__grpcount__"

# Columnar fast paths are on by default; set_columnar_enabled(False)
# forces the reference row-at-a-time implementations everywhere.
_COLUMNAR = [True]


def set_columnar_enabled(enabled: bool) -> bool:
    """Globally enable/disable the columnar fast paths; returns the old value."""
    old = _COLUMNAR[0]
    _COLUMNAR[0] = bool(enabled)
    return old


def columnar_enabled() -> bool:
    """True when the columnar fast paths are active."""
    return _COLUMNAR[0]


# Hash values are pure functions of (key values, seed, hash family);
# cleaning and correspondence checks re-hash the same keys every period,
# so memoize — but bound the cache (it previously grew without limit
# across maintenance periods) and invalidate it automatically when the
# active hash family changes.
_HASH_MEMO: dict = {}
_HASH_MEMO_FAMILY = [None]

#: Entry cap for the hash-draw memo; the cache is dropped wholesale when
#: it fills (hash draws are cheap to recompute relative to unbounded RSS).
HASH_MEMO_LIMIT = 1 << 20


def clear_hash_memo() -> None:
    """Drop cached hash draws (also done automatically on family change)."""
    _HASH_MEMO.clear()
    _HASH_MEMO_FAMILY[0] = None


def hash_draw(values: tuple, seed: int) -> float:
    """Memoized uniform draw in [0,1) for a key tuple under ``seed``."""
    fam = get_hash_family()
    if fam is not _HASH_MEMO_FAMILY[0]:
        _HASH_MEMO.clear()
        _HASH_MEMO_FAMILY[0] = fam
    key = (values, seed)
    got = _HASH_MEMO.get(key)
    if got is None:
        if len(_HASH_MEMO) >= HASH_MEMO_LIMIT:
            _HASH_MEMO.clear()
        got = fam(values, seed)
        _HASH_MEMO[key] = got
    return got


def eta_mask(columns, ratio: float, seed: int):
    """Per-row sampling decisions for η over key ``columns``.

    The linear family hashes all rows in one numpy pass; cryptographic
    families (where per-row hashing dwarfs dict overhead) go through the
    memoized :func:`hash_draw`, so re-sampling the same keys at another
    ratio — the adaptive-cleaning pattern — stays cheap.
    """
    if get_hash_family() is linear_unit:
        return unit_hash_batch(columns, seed) < ratio
    return [hash_draw(key, seed) < ratio for key in zip(*columns)]


def evaluate(expr: Expr, leaves: Mapping) -> Relation:
    """Evaluate ``expr`` against ``leaves`` and return a keyed Relation."""
    rel = _eval(expr, leaves, {})
    try:
        rel.key = derive_key(expr, leaves)
    except KeyDerivationError:
        rel.key = None
    return rel


def _eval(expr: Expr, leaves: Mapping, memo: dict) -> Relation:
    """Evaluate with per-call memoization on node identity.

    Maintenance strategies share subtree objects (e.g. the fresh version
    of a base relation appears in several change-table terms); evaluating
    each shared node once makes the change-table cost proportional to the
    delta size rather than the term count.
    """
    key = id(expr)
    got = memo.get(key)
    if got is None:
        got = _eval_inner(expr, leaves, memo)
        memo[key] = got
    return got


def _eval_inner(expr: Expr, leaves: Mapping, memo: dict) -> Relation:
    if isinstance(expr, BaseRel):
        try:
            rel = leaves[expr.name]
        except KeyError:
            raise EvaluationError(f"unknown base relation {expr.name!r}") from None
        if isinstance(rel, Relation):
            if not rel.is_materialized:
                # A columnar-backed leaf (e.g. a maintained view that was
                # never read row-wise) stays columnar.
                return Relation.from_columnar(
                    rel.columnar(), key=rel.key, name=expr.name
                )
            # Leaf wrapping shares the (validated, immutable) rows list
            # and the leaf's columnar cache, so neither rows nor column
            # arrays are rebuilt across repeated queries.
            out = Relation.trusted(rel.schema, rel.rows, key=rel.key, name=expr.name)
            out._columnar = rel.columnar()
            return out
        return Relation(rel.schema, rel.rows, key=rel.key, name=expr.name)
    if isinstance(expr, Select):
        fast = _indexed_membership_select(expr, leaves)
        if fast is not None:
            return fast
        child = _eval(expr.child, leaves, memo)
        if _COLUMNAR[0] and len(child):
            mask = _try_mask(expr.predicate, child)
            if mask is not None:
                # The output is the child batch plus a gather index; no
                # row tuples are built here.
                batch = child.columnar().take(np.flatnonzero(mask))
                return Relation.from_columnar(batch)
        pred = expr.predicate.bind(child.schema)
        return Relation.trusted(child.schema, [r for r in child.rows if pred(r)])
    if isinstance(expr, Project):
        child = _eval(expr.child, leaves, memo)
        schema = Schema([o.name for o in expr.outputs])
        if _COLUMNAR[0] and len(child) and expr.outputs:
            if all(o.is_passthrough for o in expr.outputs):
                sources = [o.source_column() for o in expr.outputs]
                child.schema.indexes(sources)  # surface unknown columns now
                batch = child.columnar().select_as(
                    [(o.name, src) for o, src in zip(expr.outputs, sources)]
                )
                return Relation.from_columnar(batch)
            arrays = _try_project_vectors(expr, child)
            if arrays is not None:
                return Relation.from_columnar(
                    ColumnarRelation.from_arrays(schema, arrays, len(child))
                )
        fns = [o.term.bind(child.schema) for o in expr.outputs]
        rows = [tuple(fn(row) for fn in fns) for row in child.rows]
        return Relation(schema, rows)
    if isinstance(expr, Join):
        return _eval_join(expr, leaves, memo)
    if isinstance(expr, Aggregate):
        return _eval_aggregate(expr, leaves, memo)
    if isinstance(expr, Union):
        left, right = _eval_setop_inputs(expr, leaves, memo)
        if not len(right):
            return Relation.trusted(left.schema, list(left.rows))
        seen = set(left.rows)
        rows = list(left.rows) + [r for r in right.rows if r not in seen]
        return Relation.trusted(left.schema, rows)
    if isinstance(expr, Intersect):
        left, right = _eval_setop_inputs(expr, leaves, memo)
        rset = set(right.rows)
        rows = [r for r in dict.fromkeys(left.rows) if r in rset]
        return Relation.trusted(left.schema, rows)
    if isinstance(expr, Difference):
        left, right = _eval_setop_inputs(expr, leaves, memo)
        if not len(right):
            return Relation.trusted(left.schema, list(left.rows))
        rset = set(right.rows)
        rows = [r for r in dict.fromkeys(left.rows) if r not in rset]
        return Relation.trusted(left.schema, rows)
    if isinstance(expr, Hash):
        # Hash samples of named leaves are cached on the leaf relation —
        # the in-memory analogue of a hash index over the sampling key
        # (relations are immutable, so the cache cannot go stale).
        cache = None
        cache_key = None
        if isinstance(expr.child, BaseRel):
            leaf = leaves.get(expr.child.name) if hasattr(leaves, "get") else None
            if leaf is not None:
                cache = leaf.sample_cache()
                # The family is part of the key: cached samples must not
                # survive set_hash_family (same staleness bug the draw
                # memo had).
                cache_key = (expr.attrs, expr.ratio, expr.seed, get_hash_family())
                hit = cache.get(cache_key)
                if hit is not None:
                    if isinstance(hit, ColumnarRelation):
                        return Relation.from_columnar(hit, key=leaf.key)
                    return Relation.trusted(leaf.schema, hit, key=leaf.key)
        child = _eval(expr.child, leaves, memo)
        ratio, seed = expr.ratio, expr.seed
        if _COLUMNAR[0] and len(child):
            # Batched η over whole key columns (vectorized for the
            # linear family, memoized per key otherwise); the sampled
            # output is a gather over the child batch.
            cols = child.columnar()
            mask = eta_mask([cols.pycolumn(a) for a in expr.attrs], ratio, seed)
            batch = cols.take(np.flatnonzero(mask))
            if cache is not None:
                cache[cache_key] = batch
            return Relation.from_columnar(batch, key=child.key)
        idx = child.schema.indexes(expr.attrs)
        rows = [
            row
            for row in child.rows
            if hash_draw(tuple(row[i] for i in idx), seed) < ratio
        ]
        if cache is not None:
            cache[cache_key] = rows
        return Relation.trusted(child.schema, rows, key=child.key)
    if isinstance(expr, Merge):
        return _eval_merge(expr, leaves, memo)
    raise EvaluationError(f"cannot evaluate {type(expr).__name__}")


def _indexed_membership_select(expr: Select, leaves) -> Relation:
    """Fast path: σ_{col ∈ K}(BaseRel) through a cached value index.

    Key-set pulls (outlier-index materialization, §6.2) select a small
    number of key values from a base relation; a database would serve
    them from a B-tree.  We cache a value→rows index on the (immutable)
    leaf relation so the selection costs O(|K| + output) instead of a
    full scan.
    """
    from repro.algebra.predicates import Col, IsIn

    pred = expr.predicate
    if not (isinstance(expr.child, BaseRel) and isinstance(pred, IsIn)
            and isinstance(pred.term, Col)):
        return None
    leaf = leaves.get(expr.child.name) if hasattr(leaves, "get") else None
    if leaf is None:
        return None
    cache = leaf.sample_cache()
    cache_key = ("__valindex__", pred.term.name)
    index = cache.get(cache_key)
    if index is None:
        pos = leaf.schema.index(pred.term.name)
        index = {}
        for row in leaf.rows:
            index.setdefault(row[pos], []).append(row)
        cache[cache_key] = index
    rows = []
    for value in pred.values:
        rows.extend(index.get(value, ()))
    return Relation(leaf.schema, rows, key=leaf.key)


def _try_mask(predicate, relation):
    """Vectorized selection mask, or None to fall back to the row path.

    Any failure — no columnar form, mixed-type comparison errors, float
    divide/invalid signals — defers to the row loop, which either
    produces the reference result or raises the reference error.
    """
    try:
        mask = predicate.mask(relation)
    except Exception:
        return None
    if len(mask) != len(relation):
        return None
    return mask


def _try_project_vectors(expr: Project, child: Relation):
    """Vectorized generalized projection: one value array per output.

    Returns ``{name: array}`` covering every output, or None to fall
    back.  Mirrors the mask contract: float divide/invalid raise instead
    of flowing inf/nan into projected values, and any failure defers to
    the row loop (which produces the reference result or error).
    """
    cols = child.columnar()
    n = len(child)
    arrays = {}
    try:
        with np.errstate(divide="raise", invalid="raise"):
            for o in expr.outputs:
                val = o.term.vector(cols)
                if isinstance(val, np.ndarray) and val.ndim == 1:
                    if len(val) != n:
                        return None
                    arrays[o.name] = val
                else:
                    arrays[o.name] = _const_column(val, n)
    except Exception:
        return None
    return arrays


def _const_column(value, n: int) -> np.ndarray:
    """A length-``n`` column holding one row-independent value."""
    if isinstance(value, bool) or isinstance(value, (float, str)) or (
        isinstance(value, int) and -(1 << 63) <= value < (1 << 63)
    ):
        return np.full(n, value)
    out = np.empty(n, dtype=object)
    for i in range(n):
        out[i] = value
    return out


def _join_keys(rel, cols):
    """Join keys for all rows, extracted column-wise in bulk.

    Single-column keys are the bare column values (no per-row tuple
    allocation); multi-column keys are tuples via one zip pass.
    """
    columnar = rel.columnar()
    if len(cols) == 1:
        return columnar.pycolumn(cols[0])
    return list(zip(*(columnar.pycolumn(c) for c in cols)))


def _eval_setop_inputs(expr, leaves, memo):
    left = _eval(expr.left, leaves, memo)
    right = _eval(expr.right, leaves, memo)
    if left.schema != right.schema:
        raise SchemaError(
            f"set operation requires identical schemas: "
            f"{left.schema!r} vs {right.schema!r}"
        )
    return left, right


# ----------------------------------------------------------------------
# Join
# ----------------------------------------------------------------------
def _eval_join(expr: Join, leaves, memo) -> Relation:
    left = _eval(expr.left, leaves, memo)
    right = _eval(expr.right, leaves, memo)
    lcols = expr.left_on()
    rcols = expr.right_on()
    if lcols:
        # Validate equality columns up front (before any fast path).
        left.schema.indexes(lcols)
        right.schema.indexes(rcols)

    collapsed = expr.collapsed_columns()
    kept_right = [c for c in right.schema.columns if c not in collapsed]
    out_schema = left.schema.concat(right.schema, drop_right=collapsed)

    if expr.how == "inner" and (not len(left) or not len(right)):
        return Relation(out_schema, [])

    if _COLUMNAR[0] and lcols:
        fast = _join_columnar(expr, left, right, out_schema, kept_right)
        if fast is not None:
            return fast
    return _join_rows(expr, left, right, out_schema, kept_right)


def _factorize_join_keys(lbatch, rbatch, lcols, rcols):
    """Dense integer key codes for both join sides, or None to fall back.

    Each key column pair is factorized with one ``np.unique`` over the
    concatenated left+right values; multi-column keys re-factorize the
    stacked per-column codes.  Returns ``(lcodes, rcodes, n_keys)``.

    Fallback conditions (the row path's Python ``dict`` defines the
    matching semantics): object-dtype columns (``None`` keys join
    row-wise via ``None == None``; the factorizer cannot see that),
    NaN-bearing float keys (``nan`` never equals itself row-wise but
    ``np.unique`` collapses NaNs), int/float pairs whose magnitudes
    reach 2**53 (float64 promotion loses int exactness), and any
    cross-kind pair numpy would coerce (int vs str, …).
    """
    nl, nr = lbatch.nrows, rbatch.nrows
    code_cols = []
    for lc, rc in zip(lcols, rcols):
        la = lbatch.array(lc)
        ra = rbatch.array(rc)
        lk, rk = la.dtype.kind, ra.dtype.kind
        if lk == "O" or rk == "O":
            return None
        if lk in "biuf" and rk in "biuf":
            for arr, kind in ((la, lk), (ra, rk)):
                if kind == "f" and arr.size and np.isnan(arr).any():
                    return None
            if "f" in (lk, rk) and (lk in "biu" or rk in "biu"):
                int_side = la if lk in "biu" else ra
                if int_side.size and _int_bound(int_side) >= _FLOAT_EXACT:
                    return None
        elif not (lk == rk and lk in "US"):
            return None
        combo = np.concatenate([la, ra])
        if combo.dtype.kind == "f" and "f" not in (lk, rk):
            # int64 vs uint64 promotes to float64; only exact when every
            # key fits in 2**53 (otherwise distinct keys could collide).
            if max(_int_bound(la), _int_bound(ra)) >= _FLOAT_EXACT:
                return None
        _, inv = np.unique(combo, return_inverse=True)
        code_cols.append(np.asarray(inv).reshape(-1))
    if len(code_cols) > 1:
        stacked = np.column_stack(code_cols)
        _, inv = np.unique(stacked, axis=0, return_inverse=True)
        inv = np.asarray(inv).reshape(-1)
    else:
        inv = code_cols[0]
    n_keys = int(inv.max()) + 1 if len(inv) else 0
    return inv[:nl], inv[nl:], n_keys


def _expand_matches(lcodes, mcounts, eff, starts, order):
    """Expand per-probe match counts into flat output index vectors.

    Returns ``(left_idx, right_idx, valid)`` where row ``k`` of the join
    output joins left row ``left_idx[k]`` with build row ``right_idx[k]``
    when ``valid[k]``, and is a left row padded with NULLs otherwise
    (``eff`` reserves one output slot for padded probe rows).  Matches
    appear in probe order and, within one probe row, in build row order —
    exactly the nested-loop order of the reference row join.
    """
    total = int(eff.sum())
    left_idx = np.repeat(np.arange(len(lcodes), dtype=np.intp), eff)
    run_start = np.cumsum(eff) - eff
    offs = np.arange(total, dtype=np.intp) - np.repeat(run_start, eff)
    valid = offs < np.repeat(mcounts, eff)
    if len(order):
        gath = np.repeat(starts[lcodes], eff) + offs
        right_idx = order[np.where(valid, gath, 0)]
    else:
        right_idx = np.zeros(total, dtype=np.intp)
    return left_idx, right_idx, valid


def _join_output_batch(
    expr, left, right, out_schema, kept_right, left_idx, right_idx, valid, tail
):
    """The join output as a provider-backed batch of fancy-indexed gathers.

    The output has a *main* region (probe matches plus NULL-padded probe
    rows, interleaved in probe order) and a *tail* region (unmatched
    build rows of right/full outer joins).  Every column is one or two
    gathers, built only when read; columns that need NULL padding drop
    to object dtype holding Python values (see ``as_object_array``), so
    downstream null-aware fallbacks see exactly the row path's values.
    """
    lbatch = left.columnar()
    rbatch = right.columnar()
    n_main = len(left_idx)
    n_tail = len(tail)
    invalid = None if bool(valid.all()) else ~valid
    collapse = expr.collapse_map()

    def gather(arr, idx):
        if len(arr) == 0 and len(idx):
            # Gathers from an empty side only happen at padded positions;
            # the pad overwrite below fills every entry.
            return np.empty(len(idx), dtype=object)
        return arr[idx]

    def left_column(c):
        def build():
            main = gather(lbatch.array(c), left_idx)
            if not n_tail:
                return main
            src = collapse.get(c)
            if src is not None:
                # Collapsed equality column: right-only rows carry the
                # key value from the right side.
                tail_vals = gather(rbatch.array(src), tail)
            else:
                tail_vals = np.empty(n_tail, dtype=object)  # all None
            return _concat_columns(main, tail_vals)

        return build

    def right_column(c):
        def build():
            arr = rbatch.array(c)
            main = gather(arr, right_idx)
            if invalid is not None:
                main = as_object_array(main)
                main[invalid] = None
            if not n_tail:
                return main
            return _concat_columns(main, gather(arr, tail))

        return build

    providers = {c: left_column(c) for c in left.schema.columns}
    for c in kept_right:
        providers[c] = right_column(c)
    return ColumnarRelation.from_providers(out_schema, providers, n_main + n_tail)


def _concat_columns(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Concatenate two column fragments without corrupting values.

    Same-dtype fragments (and string pairs, where only the item size
    differs) concatenate directly; anything else goes through an object
    array of Python values — ``np.concatenate`` would happily promote
    int64+float64 to float64 and turn the int fragment's values into
    floats the row path never produced.
    """
    if a.dtype == b.dtype or (a.dtype.kind == b.dtype.kind and a.dtype.kind in "US"):
        return np.concatenate([a, b])
    out = np.empty(len(a) + len(b), dtype=object)
    if len(a):
        out[: len(a)] = a.tolist() if a.dtype != object else a
    if len(b):
        out[len(a):] = b.tolist() if b.dtype != object else b
    return out


def _join_columnar(expr: Join, left, right, out_schema, kept_right):
    """Vectorized equality hash join, or None to fall back to the row path.

    Build/probe works on dense integer key codes: the build (right) side
    is stable-sorted by code once, per-code start offsets come from a
    cumulative count, and each probe row's matches are expanded with
    index arithmetic — no per-row tuple allocation anywhere.  Inner,
    left, right and full outer joins all run here; an extra theta
    predicate is applied as a vectorized mask over the match batch when
    it has a columnar form (otherwise the whole join falls back).
    """
    nl, nr = len(left), len(right)
    lbatch = left.columnar()
    rbatch = right.columnar()
    codes = _factorize_join_keys(lbatch, rbatch, expr.left_on(), expr.right_on())
    if codes is None:
        return None
    lcodes, rcodes, n_keys = codes

    counts = np.bincount(rcodes, minlength=n_keys)
    order = np.argsort(rcodes, kind="stable")
    starts = np.zeros(n_keys + 1, dtype=np.intp)
    np.cumsum(counts, out=starts[1:])
    mcounts = counts[lcodes]

    pad_left = expr.how in ("left", "full")
    if expr.theta is None:
        eff = np.maximum(mcounts, 1) if pad_left else mcounts
        left_idx, right_idx, valid = _expand_matches(
            lcodes, mcounts, eff, starts, order
        )
    else:
        left_idx, right_idx, valid = _expand_matches(
            lcodes, mcounts, mcounts, starts, order
        )
        pair_batch = _join_output_batch(
            expr, left, right, out_schema, kept_right,
            left_idx, right_idx, valid, np.zeros(0, dtype=np.intp),
        )
        tmask = _try_mask(expr.theta, Relation.from_columnar(pair_batch))
        if tmask is None:
            return None
        tmask = np.asarray(tmask, dtype=bool)
        left_idx = left_idx[tmask]
        right_idx = right_idx[tmask]
        valid = np.ones(len(left_idx), dtype=bool)
        if pad_left:
            hit = np.zeros(nl, dtype=bool)
            hit[left_idx] = True
            pads = np.flatnonzero(~hit)
            if len(pads):
                # Interleave pad rows at their probe position (stable by
                # left index; a padded row never shares one with a match).
                li = np.concatenate([left_idx, pads])
                ri = np.concatenate([right_idx, np.zeros(len(pads), dtype=np.intp)])
                vd = np.concatenate([valid, np.zeros(len(pads), dtype=bool)])
                perm = np.argsort(li, kind="stable")
                left_idx, right_idx, valid = li[perm], ri[perm], vd[perm]

    tail = np.zeros(0, dtype=np.intp)
    if expr.how in ("right", "full"):
        rhit = np.zeros(nr, dtype=bool)
        if len(right_idx):
            rhit[right_idx[valid]] = True
        tail = np.flatnonzero(~rhit)

    batch = _join_output_batch(
        expr, left, right, out_schema, kept_right, left_idx, right_idx, valid, tail
    )
    return Relation.from_columnar(batch)


def _join_rows(expr: Join, left, right, out_schema, kept_right) -> Relation:
    """Reference row-at-a-time join (hash join on equality columns)."""
    lcols = expr.left_on()
    rcols = expr.right_on()
    kept_ridx = right.schema.indexes(kept_right)
    left_width = len(left.schema)

    # Positions in the output where collapsed equality columns live, paired
    # with the right-side source index — used to fill key values for rows
    # that only matched on the right (right/full outer joins).
    collapse_fill = []
    for lc, rc in expr.on:
        if lc == rc:
            collapse_fill.append((left.schema.index(lc), right.schema.index(rc)))

    theta = expr.theta.bind(out_schema) if expr.theta is not None else None

    rows = []
    matched_right = set()
    if lcols:
        if _COLUMNAR[0]:
            # Bulk column-wise build/probe key extraction (no per-row
            # tuple construction for single-column equality joins).
            build_keys = _join_keys(right, rcols)
            probe_keys = _join_keys(left, lcols)
        else:
            ridx = right.schema.indexes(rcols)
            lidx = left.schema.indexes(lcols)
            build_keys = [tuple(row[i] for i in ridx) for row in right.rows]
            probe_keys = [tuple(row[i] for i in lidx) for row in left.rows]
        build = {}
        for j, bkey in enumerate(build_keys):
            build.setdefault(bkey, []).append(j)
        right_rows = right.rows
        pad = (None,) * len(kept_right)
        for lrow, key in zip(left.rows, probe_keys):
            hit = False
            for j in build.get(key, ()):
                out = lrow + tuple(right_rows[j][i] for i in kept_ridx)
                if theta is None or theta(out):
                    rows.append(out)
                    matched_right.add(j)
                    hit = True
            if not hit and expr.how in ("left", "full"):
                rows.append(lrow + pad)
    else:
        # Pure theta join: nested loop.
        pad = (None,) * len(kept_right)
        for lrow in left.rows:
            hit = False
            for j, rrow in enumerate(right.rows):
                out = lrow + tuple(rrow[i] for i in kept_ridx)
                if theta is None or theta(out):
                    rows.append(out)
                    matched_right.add(j)
                    hit = True
            if not hit and expr.how in ("left", "full"):
                rows.append(lrow + pad)
    if expr.how in ("right", "full"):
        pad_left = [None] * left_width
        for j, rrow in enumerate(right.rows):
            if j in matched_right:
                continue
            out = list(pad_left)
            for out_pos, src_idx in collapse_fill:
                out[out_pos] = rrow[src_idx]
            rows.append(tuple(out) + tuple(rrow[i] for i in kept_ridx))
    return Relation(out_schema, rows)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _eval_aggregate(expr: Aggregate, leaves, memo) -> Relation:
    child = _eval(expr.child, leaves, memo)
    out_schema = Schema(expr.group_by + tuple(a.name for a in expr.aggs))
    if _COLUMNAR[0]:
        fast = _aggregate_columnar(expr, child, out_schema)
        if fast is not None:
            return fast
    gidx = child.schema.indexes(expr.group_by)
    groups = {}
    for row in child.rows:
        groups.setdefault(tuple(row[i] for i in gidx), []).append(row)
    specs = []
    for a in expr.aggs:
        fn = get_aggregate(a.func)
        term = a.term.bind(child.schema) if a.term is not None else None
        specs.append((fn, term))
    rows = []
    if not groups and not expr.group_by and expr.aggs:
        # Global aggregate over an empty input still yields one row.
        groups = {(): []}
    for gkey, grows in groups.items():
        vals = []
        for fn, term in specs:
            if term is None:
                vals.append(fn.compute(grows))
            else:
                vals.append(fn.compute([term(r) for r in grows]))
        rows.append(gkey + tuple(vals))
    return Relation(out_schema, rows)


def _aggregate_columnar(expr: Aggregate, child: Relation, out_schema):
    """Columnar γ: grouped reduceat-style reductions, or None to fall back.

    Group ids come from :func:`repro.algebra.columnar.group_ids` in
    first-appearance order (identical to the dict grouping of the row
    path).  Each aggregate spec vectorizes independently: specs whose
    input term or dtype does not qualify are computed per group with the
    reference ``compute`` over stably-ordered row values, so a single
    exotic column never forces the whole γ back to the row loop.  The
    child's rows are only materialized if such a per-spec fallback runs.
    """
    n = len(child)
    if n == 0 or (not expr.group_by and not expr.aggs):
        return None
    try:
        cols = child.columnar()
        if expr.group_by:
            gid, group_keys = group_ids(cols, expr.group_by)
        else:
            gid = np.zeros(n, dtype=np.intp)
            group_keys = [()]
        ngroups = len(group_keys)
        counts = np.bincount(gid, minlength=ngroups)
        order = starts = split = None
        agg_cols = []
        for a in expr.aggs:
            fn = get_aggregate(a.func)
            values = None
            if fn.grouped is not None and a.term is not None:
                values = _vector_values(a.term, cols, fn.name)
            if fn.grouped is not None and (a.term is None or values is not None):
                if order is None:
                    order, starts = grouped_starts(gid, counts)
                sorted_vals = values[order] if values is not None else None
                agg_cols.append(fn.grouped(sorted_vals, starts, counts).tolist())
                continue
            # Per-spec fallback: reference compute over each group's
            # values, in row order (stable sort preserves it).
            if split is None:
                if order is None:
                    order, starts = grouped_starts(gid, counts)
                split = np.split(order, np.asarray(starts[1:]))
            rows = child.rows
            bound = a.term.bind(child.schema) if a.term is not None else None
            out = []
            for g in range(ngroups):
                if bound is None:
                    vals = [rows[i] for i in split[g]]
                else:
                    vals = [bound(rows[i]) for i in split[g]]
                out.append(fn.compute(vals))
            agg_cols.append(out)
    except Exception:
        return None
    out_rows = [
        gkey + tuple(col[g] for col in agg_cols)
        for g, gkey in enumerate(group_keys)
    ]
    return Relation(out_schema, out_rows)


def _vector_values(term, cols, func_name):
    """A numeric value array for one aggregate input, or None to fall back.

    Float divide/invalid raise (mirroring the row path's ZeroDivisionError)
    instead of silently flowing inf/nan into the reductions.
    """
    try:
        with np.errstate(divide="raise", invalid="raise"):
            arr = term.vector(cols)
    except Exception:
        return None
    if np.ndim(arr) == 0 or not isinstance(arr, np.ndarray):
        return None
    if arr.dtype.kind == "b":
        if func_name in ("min", "max"):
            # min/max over bools must return False/True, not 0/1.
            return None
        return arr.astype(np.int64)
    if arr.dtype.kind in "iu":
        if func_name in ("sum", "avg") and arr.size:
            bound = max(abs(int(arr.min())), abs(int(arr.max())))
            # Sums that could wrap int64 must use Python's big ints;
            # avg additionally divides through float64, which stops
            # being exactly rounded once the sum can exceed 2**53.
            limit = _FLOAT_EXACT if func_name == "avg" else _INT64_SAFE
            if bound * arr.size >= limit:
                return None
        return arr
    if arr.dtype.kind == "f":
        if func_name in ("min", "max") and np.isnan(arr).any():
            # Python min/max over NaNs is order-dependent; defer.
            return None
        return arr
    return None


# ----------------------------------------------------------------------
# Change-table merge
# ----------------------------------------------------------------------
def _eval_merge(expr: Merge, leaves, memo) -> Relation:
    stale = _eval(expr.stale, leaves, memo)
    change = _eval(expr.change, leaves, memo)
    out_schema = stale.schema
    key_idx_stale = stale.schema.indexes(expr.key)
    key_idx_change = change.schema.indexes(expr.key)

    change_by_key = {}
    for row in change.rows:
        change_by_key[tuple(row[i] for i in key_idx_change)] = row

    has_explicit_count = GROUP_COUNT in stale.schema
    grp_idx_change = (
        change.schema.index(GROUP_COUNT) if GROUP_COUNT in change.schema else None
    )

    # Resolve combiner plans: (out position, mode, change position).
    plans = []
    ratio_plans = []
    for comb in expr.combiners:
        out_pos = stale.schema.index(comb.column)
        if comb.mode == "group":
            continue
        if comb.mode == "ratio":
            num_pos = stale.schema.index(comb.args[0])
            den_pos = stale.schema.index(comb.args[1])
            ratio_plans.append((out_pos, num_pos, den_pos))
            continue
        change_pos = change.schema.index(comb.column)
        plans.append((out_pos, comb.mode, change_pos))

    def combine_row(old_row, change_row):
        out = list(old_row)
        for out_pos, mode, change_pos in plans:
            delta = change_row[change_pos]
            old = out[out_pos]
            if mode == "add":
                out[out_pos] = (old or 0) + (delta or 0)
            elif mode == "replace":
                out[out_pos] = delta if delta is not None else old
            elif mode == "min":
                if delta is not None:
                    out[out_pos] = delta if old is None else min(old, delta)
            elif mode == "max":
                if delta is not None:
                    out[out_pos] = delta if old is None else max(old, delta)
        for out_pos, num_pos, den_pos in ratio_plans:
            den = out[den_pos]
            out[out_pos] = (out[num_pos] / den) if den else float("nan")
        return tuple(out)

    def insert_row(change_row):
        # A missing row: synthesize a stale-side identity row, then combine.
        old = [None] * len(out_schema)
        for s_i, c_i in zip(key_idx_stale, key_idx_change):
            old[s_i] = change_row[c_i]
        return combine_row(tuple(old), change_row)

    grp_idx_stale = stale.schema.index(GROUP_COUNT) if has_explicit_count else None
    drop = expr.drop_empty

    rows = []
    seen = set()
    for row in stale.rows:
        key = tuple(row[i] for i in key_idx_stale)
        change_row = change_by_key.get(key)
        if change_row is None:
            rows.append(row)
            continue
        seen.add(key)
        merged = combine_row(row, change_row)
        if not drop:
            rows.append(merged)
            continue
        if has_explicit_count:
            support = merged[grp_idx_stale]
        elif grp_idx_change is not None:
            # SPJ views: stale rows have implicit multiplicity one.
            support = 1 + (change_row[grp_idx_change] or 0)
        else:
            support = 1
        if support is None or support > 0:
            rows.append(merged)
    for key, change_row in change_by_key.items():
        if key in seen:
            continue
        merged = insert_row(change_row)
        if not drop:
            rows.append(merged)
            continue
        if has_explicit_count:
            support = merged[grp_idx_stale]
        elif grp_idx_change is not None:
            support = change_row[grp_idx_change] or 0
        else:
            support = 1
        if support is None or support > 0:
            rows.append(merged)
    return Relation(out_schema, rows, key=expr.key)
