"""Fig 10 — Aggregate (cube) view maintenance cost and speedup."""

from conftest import run_once

from repro.experiments import (
    fig10a_maintenance_vs_ratio,
    fig10b_speedup_vs_update_size,
)


def test_fig10a_cube_maintenance_vs_ratio(benchmark, record_result):
    result = run_once(benchmark, fig10a_maintenance_vs_ratio, scale=0.4)
    record_result(result)
    times = result.column("svc_seconds")
    ivm = result.rows[0]["ivm_seconds"]
    assert times[0] < ivm
    assert times[0] < times[-1]


def test_fig10b_cube_speedup_vs_update_size(benchmark, record_result):
    result = run_once(benchmark, fig10b_speedup_vs_update_size, scale=0.4)
    record_result(result)
    speedups = result.column("speedup")
    assert min(speedups) > 1.0
