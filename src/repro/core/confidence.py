"""Confidence machinery for sample-mean queries — paper §5.2.1.

The paper rewrites a predicated aggregate into a *trans* table (predicate
folded into the selected expression, scaled by 1/m), bounds SVC+AQP with
the CLT on the trans values, and bounds SVC+CORR on the *diff* table
built with the correspondence-subtract operator −̇ (Def 4): a full outer
join of the clean and dirty trans tables on the view key with NULLs read
as zero.

Variance estimators
-------------------
``se_method="ht"`` (default) uses the Horvitz–Thompson variance estimate
for hash (Poisson) sampling, ``Var̂(Σt) = Σ_sample (1−m)·t_i²``, which
correctly accounts for the random sample size (the paper's SQL formula
``stdev(trans)/sqrt(count)`` is the CI of the *mean* of the trans values
and collapses to zero width on constant data).  ``se_method="paper"``
reproduces the paper's formula, scaled to the sum estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from repro.algebra.relation import Relation
from repro.errors import EstimationError


@dataclass
class Estimate:
    """A point estimate with a symmetric CLT confidence interval."""

    value: float
    se: float
    confidence: float = 0.95
    method: str = ""
    sample_rows: int = 0

    @property
    def z(self) -> float:
        """Gaussian tail value for the configured confidence level."""
        return gaussian_z(self.confidence)

    @property
    def ci_low(self) -> float:
        return self.value - self.z * self.se

    @property
    def ci_high(self) -> float:
        return self.value + self.z * self.se

    @property
    def interval(self) -> Tuple[float, float]:
        """(low, high) at the configured confidence level."""
        return (self.ci_low, self.ci_high)

    def contains(self, truth: float) -> bool:
        """True if the interval covers ``truth``."""
        return self.ci_low <= truth <= self.ci_high

    def __repr__(self):
        return (
            f"Estimate({self.value:.6g} ± {self.z * self.se:.3g} "
            f"@{self.confidence:.0%}, {self.method})"
        )


def gaussian_z(confidence: float) -> float:
    """Two-sided Gaussian tail value (1.96 for 95%, 2.57 for 99%)."""
    if not 0.0 < confidence < 1.0:
        raise EstimationError(f"confidence must be in (0,1): {confidence}")
    return float(_scipy_stats.norm.ppf(0.5 + confidence / 2.0))


def trans_values(
    rel: Relation, query, ratio: float
) -> np.ndarray:
    """The paper's trans-table values for one sample relation.

    * sum:   (1/m) · attr · cond  over every sample row;
    * count: (1/m) · cond         over every sample row;
    * avg:   attr                 over rows satisfying cond.
    """
    pred = query.predicate.bind(rel.schema)
    if query.func == "count":
        return np.array(
            [(1.0 / ratio) if pred(row) else 0.0 for row in rel.rows]
        )
    attr_idx = rel.schema.index(query.attr)
    if query.func == "sum":
        return np.array(
            [
                (row[attr_idx] / ratio) if pred(row) else 0.0
                for row in rel.rows
            ],
            dtype=float,
        )
    if query.func == "avg":
        return np.array(
            [row[attr_idx] for row in rel.rows if pred(row)], dtype=float
        )
    raise EstimationError(
        f"trans tables are defined for sum/count/avg, not {query.func!r}"
    )


def keyed_trans(
    rel: Relation, query, ratio: float, key
) -> dict:
    """Map view-key -> trans value (for the correspondence subtract)."""
    pred = query.predicate.bind(rel.schema)
    key_idx = rel.schema.indexes(key)
    out = {}
    if query.func == "count":
        for row in rel.rows:
            out[tuple(row[i] for i in key_idx)] = (
                (1.0 / ratio) if pred(row) else 0.0
            )
        return out
    attr_idx = rel.schema.index(query.attr)
    scale = 1.0 / ratio if query.func == "sum" else 1.0
    for row in rel.rows:
        k = tuple(row[i] for i in key_idx)
        if pred(row):
            out[k] = row[attr_idx] * scale
        else:
            out[k] = 0.0
    return out


def correspondence_subtract(
    clean: Relation, dirty: Relation, query, ratio: float, key
) -> np.ndarray:
    """The diff table trans(Ŝ') −̇ trans(Ŝ) of Def 4 (NULL → 0)."""
    clean_t = keyed_trans(clean, query, ratio, key)
    dirty_t = keyed_trans(dirty, query, ratio, key)
    keys = set(clean_t) | set(dirty_t)
    return np.array(
        [clean_t.get(k, 0.0) - dirty_t.get(k, 0.0) for k in keys], dtype=float
    )


def sum_se(values: np.ndarray, ratio: float, se_method: str = "ht") -> float:
    """Standard error of a Σ(trans) estimator (sum/count queries)."""
    k = len(values)
    if k == 0:
        return 0.0
    if se_method == "ht":
        return math.sqrt(max(0.0, float((1.0 - ratio) * (values ** 2).sum())))
    if se_method == "paper":
        if k < 2:
            return 0.0
        return float(values.std(ddof=1) * math.sqrt(k))
    raise EstimationError(f"unknown se_method {se_method!r}")


def mean_se(values: np.ndarray) -> float:
    """Standard error of a sample-mean estimator (avg queries)."""
    k = len(values)
    if k < 2:
        return float("inf") if k == 0 else 0.0
    return float(values.std(ddof=1) / math.sqrt(k))


def diff_se(
    diffs: np.ndarray, ratio: float, kind: str, se_method: str = "ht"
) -> float:
    """Standard error of a correction Σ(diff) or mean-difference."""
    if kind in ("sum", "count"):
        return sum_se(diffs, ratio, se_method)
    if kind == "avg":
        return mean_se(diffs)
    raise EstimationError(f"no diff-based SE for {kind!r}")


def break_even_covariance(
    stale_values: np.ndarray, fresh_values: np.ndarray
) -> Optional[float]:
    """§5.2.2: CORR beats AQP when  σ²_S ≤ 2·cov(S, S').

    Returns ``2·cov − σ²_S`` computed on corresponding value pairs
    (positive means CORR is preferred); None when undefined.
    """
    if len(stale_values) != len(fresh_values) or len(stale_values) < 2:
        return None
    cov = float(np.cov(stale_values, fresh_values, ddof=1)[0, 1])
    var_s = float(np.var(stale_values, ddof=1))
    return 2.0 * cov - var_s
