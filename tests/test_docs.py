"""Documentation health: internal links resolve, the quickstart runs.

The CI docs job runs exactly this file.  Two guarantees:

* every relative markdown link in ``README.md`` and ``docs/*.md``
  points at a file that exists in the repository (external ``http(s)``
  links and pure anchors are skipped; ``file.md#anchor`` checks the
  file part), so the docs index cannot rot silently as files move;
* the README's quickstart code block actually executes against the
  current API — the snippet is the first thing a new user copies.
"""

import re
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent

#: ``[text](target)`` pairs; targets with spaces/newlines are malformed
#: markdown and would fail the existence check below anyway.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.S)


def doc_files():
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return files


@pytest.mark.parametrize("path", doc_files(), ids=lambda p: p.name)
def test_internal_links_resolve(path):
    text = path.read_text()
    targets = LINK.findall(text)
    assert targets, f"{path.name} has no links at all (regex broken?)"
    for target in targets:
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        file_part = target.split("#", 1)[0]
        resolved = (path.parent / file_part).resolve()
        assert resolved.exists(), (
            f"{path.relative_to(REPO)} links to missing file {target!r}"
        )


def test_readme_quickstart_snippet_runs(capsys):
    text = (REPO / "README.md").read_text()
    blocks = PYTHON_BLOCK.findall(text)
    assert blocks, "README.md lost its quickstart python block"
    exec(compile(blocks[0], "<README quickstart>", "exec"), {})
    out = capsys.readouterr().out
    assert "95% CI" in out


def test_docs_mention_current_toggles():
    """The cheatsheet names must match the real API (guards renames)."""
    import repro
    import repro.algebra

    readme = (REPO / "README.md").read_text()
    for name in ("set_columnar_enabled", "set_shard_count", "set_auto_tune"):
        assert name in readme
    assert hasattr(repro, "set_shard_count")
    assert hasattr(repro, "set_auto_tune")
    assert hasattr(repro.algebra, "set_columnar_enabled")


def test_every_benchmark_result_is_json():
    """CI artifacts are uniform: no text-only result files.

    Human-readable ``.txt`` tables may sit next to a ``.json``, but
    every archived result must have the machine-readable form.
    """
    results = REPO / "benchmarks" / "results"
    txt = {p.stem for p in results.glob("*.txt")}
    json_names = {p.stem for p in results.glob("*.json")}
    assert txt <= json_names, (
        f"text-only benchmark results without JSON: {sorted(txt - json_names)}"
    )
