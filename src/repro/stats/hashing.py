"""Deterministic uniform hashing to [0, 1).

The sampling operator η_{a,m} (paper §4.4) needs a deterministic map from
a primary-key value to a uniform draw in [0, 1); a row is sampled when the
draw is below the sampling ratio m.  The paper uses MySQL's MD5/SHA1 and
argues (§12.3, SUHA) that cryptographic hashes are indistinguishable from
true uniform random variables for this purpose.

We provide two families:

* :func:`sha1_unit` — SHA1-based, the default; excellent uniformity.
* :func:`linear_unit` — a multiply-shift linear congruential hash, much
  faster but visibly less uniform; kept to reproduce the hash-choice
  trade-off discussion of §12.3 (see ``benchmarks/bench_ablation_hash``).

Both accept a ``seed`` that selects a member of the hash family, so
repeated experiments can draw independent samples while remaining fully
deterministic.

:func:`unit_hash_batch` evaluates the active family over whole key
*columns* in one pass — the columnar form used by the η operator's fast
path.  The linear family vectorizes fully in numpy (bit-identical to the
scalar form for machine-sized non-negative integer keys); SHA1 is a
cryptographic hash and is batched as a tight loop.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable, Sequence

import numpy as np

_MAX64 = float(1 << 64)
_MASK64 = (1 << 64) - 1

# Large odd multipliers for the multiply-shift family (Dietzfelbinger).
_LINEAR_MULT = 0x9E3779B97F4A7C15
_LINEAR_XOR = 0xBF58476D1CE4E5B9


def _encode(values: Sequence) -> bytes:
    """Stable byte encoding of a key-value tuple."""
    parts = []
    for v in values:
        if isinstance(v, bytes):
            parts.append(b"b" + v)
        elif isinstance(v, bool):
            parts.append(b"o1" if v else b"o0")
        elif isinstance(v, int):
            parts.append(b"i" + str(v).encode())
        elif isinstance(v, float):
            parts.append(b"f" + struct.pack(">d", v))
        elif v is None:
            parts.append(b"n")
        else:
            parts.append(b"s" + str(v).encode("utf-8", "replace"))
    return b"\x1f".join(parts)


def sha1_unit(values: Sequence, seed: int = 0) -> float:
    """SHA1 hash of a key tuple, normalized to [0, 1)."""
    h = hashlib.sha1(_encode(values) + b"|" + str(seed).encode())
    return int.from_bytes(h.digest()[:8], "big") / _MAX64


def linear_unit(values: Sequence, seed: int = 0) -> float:
    """Multiply-shift hash of a key tuple, normalized to [0, 1).

    Faster than :func:`sha1_unit` but less uniform — mirrors the linear
    hash stored procedure discussed in paper §12.3.
    """
    acc = (seed * 2 + 1) & _MASK64
    for v in values:
        x = hash(v) & _MASK64
        acc = ((acc ^ x) * _LINEAR_MULT) & _MASK64
        acc ^= acc >> 29
        acc = (acc * _LINEAR_XOR) & _MASK64
    return ((acc ^ (acc >> 32)) & _MASK64) / _MAX64


HASH_FAMILIES = {"sha1": sha1_unit, "linear": linear_unit}

_active_family = [sha1_unit]


def unit_hash(values: Sequence, seed: int = 0) -> float:
    """The library-wide hash used by the η operator (default SHA1)."""
    return _active_family[0](values, seed)


def set_hash_family(name: str) -> Callable:
    """Select the active hash family ('sha1' or 'linear'); returns it."""
    fn = HASH_FAMILIES[name]
    changed = _active_family[0] is not fn
    _active_family[0] = fn
    if changed:
        # Family-keyed memos (the η hash-draw memo) drain through the
        # central cache registry; compiled maintenance pipelines and
        # shard-plan memos are keyed by the plan epoch instead — bump it
        # so they cannot serve plans whose cached environment
        # assumptions predate the family switch (lazy import: the
        # compiler transitively imports this module).
        from repro.algebra.compiler import bump_plan_epoch
        from repro.caches import invalidate_caches

        invalidate_caches("hash_family")
        bump_plan_epoch()
    return fn


def get_hash_family() -> Callable:
    """The currently active hash function."""
    return _active_family[0]


# Python's int hash is the identity for 0 <= v < 2**61 - 1 (modulus is
# the Mersenne prime 2**61 - 1), which is what lets the linear family
# vectorize exactly over machine-sized non-negative integer keys.
_PYHASH_MODULUS = (1 << 61) - 1


def _linear_unit_vectorized(arrays: Sequence[np.ndarray], seed: int):
    """Vectorized multiply-shift hash, or None if the keys don't qualify."""
    casted = []
    for arr in arrays:
        if arr.dtype.kind not in "biu" or arr.ndim != 1:
            return None
        if arr.size and (
            int(arr.min()) < 0 or int(arr.max()) >= _PYHASH_MODULUS
        ):
            return None
        casted.append(arr.astype(np.uint64))
    acc = np.full(
        len(casted[0]) if casted else 0,
        (seed * 2 + 1) & _MASK64,
        dtype=np.uint64,
    )
    with np.errstate(over="ignore"):
        for x in casted:
            acc = (acc ^ x) * np.uint64(_LINEAR_MULT)
            acc ^= acc >> np.uint64(29)
            acc = acc * np.uint64(_LINEAR_XOR)
        out = acc ^ (acc >> np.uint64(32))
    return out.astype(np.float64) / _MAX64


def unit_hash_batch(columns: Sequence[Sequence], seed: int = 0) -> np.ndarray:
    """Uniform draws for whole key columns in one pass.

    ``columns`` holds one sequence per key attribute (all the same
    length); the result is a float array with one draw per row, equal
    element-wise to calling :func:`unit_hash` on each key tuple.  This is
    the batched form the η operator's columnar fast path uses instead of
    per-row memoized hashing.
    """
    fam = _active_family[0]
    cols = [
        c if isinstance(c, (list, tuple, np.ndarray)) else list(c)
        for c in columns
    ]
    if not cols:
        raise ValueError("unit_hash_batch requires at least one key column")
    n = len(cols[0])
    if fam is linear_unit and n:
        arrays = []
        for c in cols:
            arr = c if isinstance(c, np.ndarray) else None
            if arr is None:
                try:
                    arr = np.asarray(c)
                except (ValueError, TypeError, OverflowError):
                    return _unit_hash_batch_loop(fam, cols, n, seed)
            arrays.append(arr)
        vec = _linear_unit_vectorized(arrays, seed)
        if vec is not None:
            return vec
    return _unit_hash_batch_loop(fam, cols, n, seed)


def _unit_hash_batch_loop(fam, cols, n: int, seed: int) -> np.ndarray:
    # ndarray columns are round-tripped through tolist() so the scalar
    # hash sees plain Python values (np.int64 would encode differently).
    pycols = [c.tolist() if isinstance(c, np.ndarray) else c for c in cols]
    out = np.empty(n, dtype=np.float64)
    for i, key in enumerate(zip(*pycols)):
        out[i] = fam(key, seed)
    return out
