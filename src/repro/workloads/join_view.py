"""The Join View workload — paper §7.2.

The materialized view is the foreign-key join of lineitem and orders
(the two update-bearing TPC-D tables), extended with the classic revenue
expression ``l_extendedprice·(1−l_discount)`` via generalized projection.
Twelve group-by aggregates standing in for the TPC-D queries that use the
join (Q3, Q4, Q5, Q7, Q8, Q9, Q10, Q12, Q14, Q18, Q19, Q21) run as
queries on the view.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.algebra.expressions import BaseRel, Join, Output, Project
from repro.algebra.predicates import ALWAYS, Between, IsIn, col
from repro.core.estimators import AggQuery
from repro.db.catalog import Catalog
from repro.db.database import Database
from repro.db.view import MaterializedView
from repro.workloads.tpcd import BASE_DATE, DATE_SPAN

JOIN_VIEW_NAME = "lineorder"

#: The attributes the paper samples on: the lineitem primary key (the
#: foreign-key special case pushes the hash to the fact table).
SAMPLE_ATTRS = ("l_orderkey", "l_linenumber")

_LINE_COLS = (
    "l_orderkey", "l_linenumber", "l_partkey", "l_suppkey", "l_quantity",
    "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus",
    "l_shipdate", "l_shipmode",
)
_ORDER_COLS = (
    "o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate",
    "o_orderpriority",
)


def join_view_definition():
    """Π(lineitem ⋈_fk orders) with the revenue and order-year columns."""
    join = Join(
        BaseRel("lineitem"), BaseRel("orders"),
        on=[("l_orderkey", "o_orderkey")], foreign_key=True,
    )
    outputs = [Output(c, col(c)) for c in _LINE_COLS + _ORDER_COLS]
    outputs.append(
        Output("revenue", col("l_extendedprice") * (1 - col("l_discount")))
    )
    outputs.append(Output("o_year", col("o_orderdate") / 400))
    return Project(join, outputs)


def create_join_view(db: Database, catalog: Catalog = None) -> MaterializedView:
    """Materialize the join view on a TPCD database."""
    catalog = catalog or Catalog(db)
    return catalog.create_view(JOIN_VIEW_NAME, join_view_definition())


_MID_DATE = BASE_DATE + DATE_SPAN // 2


def tpcd_queries() -> List[Tuple[str, AggQuery, Tuple[str, ...]]]:
    """(name, aggregate query, group-by attrs) for the 12 join queries.

    Shapes follow the corresponding TPC-D queries restricted to the
    lineitem ⋈ orders attributes (the paper treats the 12 group-by
    aggregates of the join as queries on the view).
    """
    return [
        ("Q3", AggQuery("sum", "revenue", col("o_orderdate") < _MID_DATE),
         ("o_orderpriority",)),
        ("Q4", AggQuery(
            "count", None,
            Between(col("o_orderdate"), BASE_DATE, _MID_DATE)),
         ("o_orderpriority",)),
        ("Q5", AggQuery("sum", "revenue", ALWAYS), ("l_returnflag",)),
        ("Q7", AggQuery("sum", "revenue", col("l_shipdate") < _MID_DATE),
         ("l_shipmode",)),
        ("Q8", AggQuery("avg", "l_discount", ALWAYS), ("o_orderstatus",)),
        ("Q9", AggQuery("sum", "revenue", ALWAYS), ("l_linestatus",)),
        ("Q10", AggQuery("sum", "revenue", col("l_returnflag") == "R"),
         ("o_orderpriority",)),
        ("Q12", AggQuery(
            "count", None,
            IsIn(col("o_orderpriority"), ["1-URGENT", "2-HIGH"])),
         ("l_shipmode",)),
        ("Q14", AggQuery("avg", "l_extendedprice",
                         col("l_shipdate") < _MID_DATE),
         ("l_returnflag",)),
        ("Q18", AggQuery("sum", "l_quantity", col("o_totalprice") > 1000.0),
         ("o_orderstatus",)),
        ("Q19", AggQuery("sum", "revenue",
                         Between(col("l_quantity"), 1, 25)),
         ("l_shipmode",)),
        ("Q21", AggQuery("count", None, col("o_orderstatus") == "F"),
         ("l_linestatus",)),
    ]


def query_attrs() -> Dict[str, List[str]]:
    """Attribute pools for the random query generator on this view."""
    return {
        "predicate": [
            "o_orderpriority", "l_returnflag", "l_shipmode", "o_orderdate",
            "l_shipdate", "o_orderstatus", "l_linestatus",
        ],
        "aggregate": [
            "revenue", "l_extendedprice", "l_quantity", "o_totalprice",
            "l_discount",
        ],
    }
