"""Columnar views of row relations.

The SVC evaluator is row-oriented because the paper's algorithms are
defined over row lineage and per-row hashing — but the *hot loops*
(selection masks, η hashing, group-by reduction) are embarrassingly
data-parallel.  This module provides the columnar execution backend:

* :class:`ColumnarRelation` — a lazy, cached column-store view over an
  (immutable) :class:`~repro.algebra.relation.Relation`.  Columns are
  materialized on first access as numpy arrays when the values admit a
  uniform dtype, and as object arrays otherwise.
* :func:`group_ids` — dense group identifiers for a group-by key, in
  first-appearance order (exactly the order the row-at-a-time dict
  grouping produces), via ``np.unique`` when the key columns are
  integer/bool/string and a Python dict otherwise.
* :func:`grouped_starts` — the stable-sorted order and per-group start
  offsets that feed ``np.ufunc.reduceat``-style grouped reductions.

The evaluator treats every columnar path as a *fast path with a row
fallback*: any value that does not vectorize cleanly (``None``-bearing
columns under arithmetic, opaque :class:`~repro.algebra.predicates.Func`
terms, exotic Python objects) drops back to the reference row loop, so
results are identical by construction.  Integer arithmetic that could
overflow an int64 is likewise routed back to the row path, where Python's
arbitrary-precision integers define the semantics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ColumnarRelation", "column_to_array", "group_ids", "grouped_starts"]

#: dtype kinds that vectorize for arithmetic/comparison fast paths.
NUMERIC_KINDS = "biuf"

#: dtype kinds safe for exact group-key round-tripping (no int/float or
#: precision collapse): bool, signed/unsigned int, unicode, bytes.
GROUPABLE_KINDS = "biuUS"


def column_to_array(values: Sequence) -> np.ndarray:
    """One column as a 1-D numpy array, falling back to object dtype.

    ``np.asarray`` infers int64/float64/bool dtypes for uniform numeric
    columns (promotion preserves Python's ``==`` semantics).  String
    dtypes are only accepted when *every* value really is a string —
    ``np.asarray(['', 0])`` silently stringifies the int, which would
    corrupt equality masks and group keys.  Ragged, oversized-int, and
    mixed columns become object arrays so every Python value round-trips
    unchanged.
    """
    try:
        arr = np.asarray(values)
    except (ValueError, TypeError, OverflowError):
        arr = None
    if arr is not None and arr.ndim == 1:
        kind = arr.dtype.kind
        if kind in "biuf":
            return arr
        if kind == "U" and all(isinstance(v, str) for v in values):
            return arr
        if kind == "S" and all(isinstance(v, bytes) for v in values):
            return arr
        if kind == "O":
            return arr
    out = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        out[i] = v
    return out


class ColumnarRelation:
    """A cached column-store view over a row :class:`Relation`.

    Construction is O(1): columns are extracted and converted lazily, one
    per :meth:`array`/:meth:`pycolumn` call, and cached thereafter.  The
    view is valid because relations are treated as immutable everywhere
    in the library (every update path builds a new ``Relation``).
    """

    __slots__ = ("schema", "_rows", "_pycols", "_arrays")

    def __init__(self, relation):
        self.schema = relation.schema
        self._rows = relation.rows
        self._pycols: dict = {}
        self._arrays: dict = {}

    @property
    def nrows(self) -> int:
        """Number of rows in the underlying relation."""
        return len(self._rows)

    def pycolumn(self, name: str) -> list:
        """One column as a plain Python list, in row order (cached)."""
        col = self._pycols.get(name)
        if col is None:
            i = self.schema.index(name)
            col = [row[i] for row in self._rows]
            self._pycols[name] = col
        return col

    def array(self, name: str) -> np.ndarray:
        """One column as a numpy array (cached; object dtype fallback).

        The intermediate Python list is *not* cached here — only callers
        that need Python values (η hashing, dict grouping) pay for a
        retained list via :meth:`pycolumn`, so array-only access does
        not double the column's resident memory.
        """
        arr = self._arrays.get(name)
        if arr is None:
            col = self._pycols.get(name)
            if col is None:
                i = self.schema.index(name)
                col = [row[i] for row in self._rows]
            arr = column_to_array(col)
            self._arrays[name] = arr
        return arr

    def arrays(self, names: Sequence[str]) -> list:
        """Arrays for several columns, in the given order."""
        return [self.array(n) for n in names]

    def __repr__(self) -> str:
        return (
            f"<ColumnarRelation cols={list(self.schema.columns)} "
            f"rows={self.nrows} cached={sorted(self._arrays)}>"
        )


def _first_appearance(uniq, first, inv):
    """Remap ``np.unique`` output (sorted order) to first-appearance order."""
    perm = np.argsort(first, kind="stable")
    rank = np.empty(len(perm), dtype=np.intp)
    rank[perm] = np.arange(len(perm), dtype=np.intp)
    gid = rank[np.asarray(inv).reshape(-1)]
    return gid, uniq[perm]


def group_ids(cols: ColumnarRelation, names: Sequence[str]):
    """Dense group ids + group-key tuples for a group-by key.

    Returns ``(gid, group_keys)`` where ``gid[i]`` is the group of row
    ``i`` and ``group_keys[g]`` is the key tuple of group ``g``; groups
    are numbered in first-appearance (row) order, matching the dict
    grouping of the row-at-a-time path.
    """
    arrays = cols.arrays(names)
    if len(arrays) == 1 and arrays[0].dtype.kind in GROUPABLE_KINDS:
        # A single column mixing Python bools with ints flattens to an
        # int64 array, which would emit 0/1 keys where the row path
        # emits False/True; such columns take the exact dict path.
        # (set(map(type, ...)) is the cheapest full-column type scan.)
        mixed_bool = arrays[0].dtype.kind in "iu" and bool in set(
            map(type, cols.pycolumn(names[0]))
        )
        if not mixed_bool:
            uniq, first, inv = np.unique(
                arrays[0], return_index=True, return_inverse=True
            )
            gid, ordered = _first_appearance(uniq, first, inv)
            return gid, [(k,) for k in ordered.tolist()]
    kinds = {a.dtype.kind for a in arrays}
    if len(arrays) > 1 and len(kinds) == 1 and kinds <= set("biu"):
        # One kind only: np.stack on mixed bool/int columns would promote
        # bools to 0/1 and change the emitted group-key values.
        stacked = np.stack(arrays, axis=1)
        uniq, first, inv = np.unique(
            stacked, axis=0, return_index=True, return_inverse=True
        )
        gid, ordered = _first_appearance(uniq, first, inv)
        return gid, [tuple(r) for r in ordered.tolist()]
    # Exact fallback: Python values as dict keys, like the row path.
    pycols = [cols.pycolumn(n) for n in names]
    n = len(pycols[0])
    gid = np.empty(n, dtype=np.intp)
    mapping: dict = {}
    keys: list = []
    for i, key in enumerate(zip(*pycols)):
        g = mapping.get(key)
        if g is None:
            g = len(keys)
            mapping[key] = g
            keys.append(key)
        gid[i] = g
    return gid, keys


def grouped_starts(gid: np.ndarray, counts: np.ndarray):
    """Stable row order and reduceat start offsets for grouped reduction.

    Returns ``(order, starts)``: ``order`` sorts rows by group id while
    preserving row order within each group, and ``starts[g]`` is the
    offset of group ``g``'s first row in that order — the shape
    ``np.ufunc.reduceat`` wants.
    """
    order = np.argsort(gid, kind="stable")
    starts = np.zeros(len(counts), dtype=np.intp)
    np.cumsum(counts[:-1], out=starts[1:])
    return order, starts
