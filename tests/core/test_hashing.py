"""Tests for the hashing operator and hash families (§4.4, §12.3)."""

import pytest

from repro.algebra import Relation, Schema
from repro.core.hashing import (
    hash_ratio_estimate,
    hash_sample,
    linear_unit,
    sha1_unit,
    uniformity_chi2,
)
from repro.errors import EstimationError
from repro.stats.hashing import get_hash_family, set_hash_family, unit_hash


@pytest.fixture
def big_rel():
    return Relation(Schema(["id", "v"]), [(i, i * 2) for i in range(5000)],
                    key=("id",), name="big")


class TestHashFamilies:
    def test_sha1_in_unit_interval(self):
        draws = [sha1_unit((i,), 0) for i in range(100)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_linear_in_unit_interval(self):
        draws = [linear_unit((i,), 0) for i in range(100)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_deterministic(self):
        assert sha1_unit(("abc", 1), 7) == sha1_unit(("abc", 1), 7)
        assert linear_unit((42,), 3) == linear_unit((42,), 3)

    def test_seed_changes_draws(self):
        assert sha1_unit((1,), 0) != sha1_unit((1,), 1)

    def test_mixed_type_values(self):
        for v in [(1,), (1.5,), ("s",), (b"b",), (None,), (True,)]:
            assert 0.0 <= sha1_unit(v, 0) < 1.0

    def test_int_float_distinguished(self):
        assert sha1_unit((1,), 0) != sha1_unit((1.0,), 0)

    def test_family_switch(self):
        try:
            set_hash_family("linear")
            assert get_hash_family() is linear_unit
            assert unit_hash((5,), 0) == linear_unit((5,), 0)
        finally:
            set_hash_family("sha1")

    def test_sha1_uniformity(self):
        """SUHA check: ~m of sequential keys sampled at threshold m."""
        n = 20_000
        frac = sum(1 for i in range(n) if sha1_unit((i,), 0) < 0.1) / n
        assert 0.085 < frac < 0.115

    def test_chi2_statistic_reasonable_for_sha1(self):
        chi = uniformity_chi2(range(5000), bins=20)
        # 19 dof; anything below ~60 is clearly not broken.
        assert chi < 80


class TestHashSample:
    def test_ratio_close_to_m(self, big_rel):
        sample = hash_sample(big_rel, 0.1, seed=2)
        assert 0.08 < hash_ratio_estimate(big_rel, sample) < 0.12

    def test_deterministic_and_idempotent(self, big_rel):
        s1 = hash_sample(big_rel, 0.2, seed=1)
        s2 = hash_sample(big_rel, 0.2, seed=1)
        assert s1.rows == s2.rows
        # Re-sampling the sample is the identity (η is idempotent).
        s3 = hash_sample(s1, 0.2, seed=1)
        assert s3.rows == s1.rows

    def test_explicit_attrs(self, big_rel):
        sample = hash_sample(big_rel, 0.3, seed=0, attrs=("v",))
        assert set(sample.rows) <= set(big_rel.rows)

    def test_unkeyed_requires_attrs(self):
        rel = Relation(Schema(["a"]), [(1,)])
        with pytest.raises(EstimationError):
            hash_sample(rel, 0.1)

    def test_empty_relation(self):
        rel = Relation(Schema(["a"]), [], key=("a",))
        assert len(hash_sample(rel, 0.5)) == 0
        assert hash_ratio_estimate(rel, rel) == 0.0

    def test_nested_ratio_subsets(self, big_rel):
        small = hash_sample(big_rel, 0.05, seed=4)
        large = hash_sample(big_rel, 0.5, seed=4)
        assert set(small.rows) <= set(large.rows)
