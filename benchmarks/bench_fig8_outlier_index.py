"""Fig 8 — Outlier indexing: skew sweep accuracy and index overhead."""

from conftest import run_once

from repro.experiments import fig8a_skew_accuracy, fig8b_index_overhead


def test_fig8a_outlier_accuracy_vs_skew(benchmark, record_result):
    result = run_once(benchmark, fig8a_skew_accuracy, scale=0.25,
                      n_queries=30)
    record_result(result)
    most_skewed = result.rows[-1]
    # Paper shape: on the most skewed data the outlier index reduces the
    # 75%-quartile error of the correction decisively (the paper reports
    # a ~2x reduction at z=4).
    assert most_skewed["svc_corr_out_pct"] < most_skewed["svc_corr_pct"]


def test_fig8b_outlier_index_overhead(benchmark, record_result):
    import numpy as np

    result = run_once(benchmark, fig8b_index_overhead, scale=0.3)
    record_result(result)
    ivm = np.array(result.column("ivm_seconds"))
    k100 = np.array(result.column("k100_seconds"))
    k1000 = np.array(result.column("k1000_seconds"))
    # Paper shape (averaged over the four views to tame ms-scale timing
    # noise): a k=100 index keeps sampled maintenance cheaper than IVM,
    # and even k=1000 stays within the same order of magnitude.
    assert k100.mean() < ivm.mean()
    assert k1000.mean() < 3 * ivm.mean()
