"""Engine semantics: suppressions, REP000 meta-findings, baselines."""

import json

import pytest

from repro.analysis import Baseline, BaselineError


BAD_TOGGLE = """
def run():
    set_columnar_enabled(True)
    return 1
"""


# ---------------------------------------------------------------------------
# Inline suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_same_line_suppression_silences(self, project):
        project.write(
            "src/repro/workloads/run.py",
            """
            def run():
                set_columnar_enabled(True)  # repro: ignore[REP003] -- deliberate sticky install for the demo harness
                return 1
            """,
        )
        result = project.run()
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["REP003"]

    def test_comment_line_above_covers_next_statement(self, project):
        project.write(
            "src/repro/workloads/run.py",
            """
            def run():
                # repro: ignore[REP003] -- deliberate sticky install for the demo harness
                set_columnar_enabled(True)
                return 1
            """,
        )
        result = project.run()
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["REP003"]

    def test_wrong_rule_does_not_silence(self, project):
        project.write(
            "src/repro/workloads/run.py",
            """
            def run():
                set_columnar_enabled(True)  # repro: ignore[REP005] -- wrong rule for this site
                return 1
            """,
        )
        assert project.rules() == ["REP003"]

    def test_missing_reason_is_rep000_and_does_not_silence(self, project):
        project.write(
            "src/repro/workloads/run.py",
            """
            def run():
                set_columnar_enabled(True)  # repro: ignore[REP003]
                return 1
            """,
        )
        assert project.rules() == ["REP000", "REP003"]

    def test_unknown_rule_id_is_rep000(self, project):
        project.write(
            "src/repro/workloads/run.py",
            """
            X = 1  # repro: ignore[REP999] -- no such rule
            """,
        )
        assert project.rules() == ["REP000"]

    def test_rep000_itself_cannot_be_suppressed(self, project):
        project.write(
            "src/repro/workloads/run.py",
            """
            X = 1  # repro: ignore[REP000] -- trying to silence the meta rule
            """,
        )
        assert project.rules() == ["REP000"]

    def test_unparseable_file_is_rep000(self, project):
        project.write("src/repro/workloads/run.py", "def broken(:\n")
        result = project.run()
        assert [f.rule for f in result.findings] == ["REP000"]
        assert "parse" in result.findings[0].message


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_excuses_and_exits_clean(self, project, tmp_path):
        project.write("src/repro/workloads/run.py", BAD_TOGGLE)
        first = project.run()
        assert first.exit_code == 1

        path = tmp_path / "baseline.json"
        Baseline.from_findings(
            first.findings, reason="grandfathered for the test"
        ).write(path)

        second = project.run(baseline=Baseline.load(path))
        assert second.findings == []
        baselined = [(f.rule, reason) for f, reason in second.baselined]
        assert baselined == [("REP003", "grandfathered for the test")]
        assert second.exit_code == 0

    def test_baseline_is_line_number_insensitive(self, project, tmp_path):
        project.write("src/repro/workloads/run.py", BAD_TOGGLE)
        path = tmp_path / "baseline.json"
        Baseline.from_findings(project.run().findings, reason="ok").write(path)

        # Shift the finding down two lines; the entry still matches.
        padded = "# pad\n# pad\n" + BAD_TOGGLE
        project.write("src/repro/workloads/run.py", padded)
        result = project.run(baseline=Baseline.load(path))
        assert result.findings == []
        assert len(result.baselined) == 1

    def test_fixed_finding_reports_stale_entry(self, project, tmp_path):
        project.write("src/repro/workloads/run.py", BAD_TOGGLE)
        path = tmp_path / "baseline.json"
        Baseline.from_findings(project.run().findings, reason="ok").write(path)

        project.write(
            "src/repro/workloads/run.py",
            """
            def run():
                return 1
            """,
        )
        result = project.run(baseline=Baseline.load(path))
        assert result.findings == []
        stale_rules = [rule for rule, _path, _ctx in result.stale_baseline]
        assert stale_rules == ["REP003"]

    def test_empty_or_todo_reason_rejected_at_load(self, tmp_path):
        for reason in ("", "   ", "TODO"):
            path = tmp_path / "baseline.json"
            path.write_text(
                json.dumps(
                    {
                        "version": 1,
                        "entries": [
                            {
                                "rule": "REP003",
                                "path": "src/repro/x.py",
                                "context": "run",
                                "reason": reason,
                            }
                        ],
                    }
                )
            )
            with pytest.raises(BaselineError):
                Baseline.load(path)

    def test_malformed_json_rejected_at_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_rep000_cannot_be_baselined(self, project, tmp_path):
        project.write(
            "src/repro/workloads/run.py",
            """
            X = 1  # repro: ignore[REP999] -- no such rule
            """,
        )
        meta = project.run().findings
        path = tmp_path / "baseline.json"
        Baseline.from_findings(meta, reason="trying anyway").write(path)
        result = project.run(baseline=Baseline.load(path))
        assert [f.rule for f in result.findings] == ["REP000"]
        assert result.exit_code == 1
