"""Mini-batch pipeline planning (paper §7.6.2 / Figs 14-15).

A streaming cluster must sustain a fixed ingest rate while keeping a
dashboard view usable.  Large maintenance batches are efficient but
leave the view stale for minutes; SVC runs in a second thread, absorbing
shuffle-idle time, and keeps a sample fresh between batches.  This
example calibrates the error curves on a real (synthetic-data) workload
and reports the batch sizes and worst-case errors of both designs.

Run:  python examples/minibatch_pipeline.py   (takes a minute: it runs
real SVC cleanings to calibrate the error model)
"""

from repro.distributed import (
    ClusterModel,
    SteadyStateConfig,
    calibrate_error_model,
    compare_utilization,
    ivm_max_error,
    optimal_ratio,
    sweep_sampling_ratios,
)
from repro.workloads.conviva import build_conviva_workload, conviva_query_attrs

model = ClusterModel()

print("1) batch amortization (Fig 14a): records/s by batch size")
for gb in (5, 20, 80, 200):
    one = model.throughput(gb, threads=1)
    two = model.throughput(gb, threads=2)
    print(f"   {gb:>4} GB: {one:>11,.0f} (1 thread)   {two:>11,.0f} "
          f"(2 threads, {one / two:.2f}x reduction)")

print("\n2) calibrating error curves on the V2 view (real SVC runs)...")
error_model = calibrate_error_model(
    lambda: build_conviva_workload(n_records=8_000, seed=7),
    "V2", conviva_query_attrs("V2"),
    staleness_fractions=(0.02, 0.1), ratios=(0.01, 0.06, 0.2),
    n_queries=10, extrapolate_to=1_000_000.0,
)
print(f"   stale error curve:      {error_model.stale_points}")
print(f"   estimation error curve: {error_model.estimation_points}")

print("\n3) fixed throughput demand of 700k records/s (Fig 15):")
cfg = SteadyStateConfig(target_rate=700_000.0)
ivm = ivm_max_error(model, error_model, cfg)
print(f"   IVM alone:  smallest batch {ivm['batch_gb']:.0f} GB, "
      f"max error {100 * ivm['max_error']:.2f}%")
rows = sweep_sampling_ratios(model, error_model, cfg,
                             (0.01, 0.03, 0.06, 0.1, 0.2))
for row in rows:
    print(f"   SVC+IVM m={row['ratio']:<5g} max error "
          f"{100 * row['max_error']:.2f}%")
best = optimal_ratio(rows)
print(f"   -> optimal sampling ratio m={best:g}")

print("\n4) CPU utilization (Fig 16): SVC fills shuffle-idle troughs")
for config, s in compare_utilization(model, 40.0, seconds=240).items():
    print(f"   {config:8} mean {s.mean:5.1f}%   seconds below 25%: "
          f"{s.idle_seconds_below_25}")
