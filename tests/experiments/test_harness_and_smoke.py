"""Tests for the experiment harness plus tiny-scale smoke runs of every
figure-generating function (shape assertions live in benchmarks/)."""

import numpy as np
import pytest

import repro.experiments as E
from repro.experiments.harness import ExperimentResult


class TestExperimentResult:
    def test_add_and_column(self):
        r = ExperimentResult("x", "test")
        r.add(a=1, b=2.0)
        r.add(a=3, b=4.0)
        assert r.column("a") == [1, 3]

    def test_table_rendering(self):
        r = ExperimentResult("x", "test", notes="note")
        r.add(name="row", value=0.123456, large=12345.6)
        table = r.to_table()
        assert "== x: test ==" in table
        assert "note" in table
        assert "0.1235" in table

    def test_empty_table(self):
        assert "(no rows)" in ExperimentResult("x", "t").to_table()

    def test_nan_rendering(self):
        r = ExperimentResult("x", "t")
        r.add(v=float("nan"))
        assert "nan" in r.to_table()


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "fig4a", "fig4b", "fig5", "fig6a", "fig6b", "fig7a", "fig7b",
            "fig8a", "fig8b", "fig9a", "fig9b", "fig10a", "fig10b", "fig11",
            "fig12", "fig13", "fig14a", "fig14b", "fig15", "fig16",
        }
        assert set(E.ALL_EXPERIMENTS) == expected


SMOKE = [
    ("fig4a", dict(scale=0.1, ratios=(0.1, 0.5, 1.0))),
    ("fig4b", dict(scale=0.1, update_fractions=(0.05, 0.1))),
    ("fig5", dict(scale=0.1)),
    ("fig6a", dict(scale=0.1)),
    ("fig6b", dict(scale=0.1, update_fractions=(0.05, 0.3), n_queries=6)),
    ("fig7a", dict(scale=0.08, names=("V3", "V21"))),
    ("fig7b", dict(scale=0.08, names=("V3", "V22"), n_queries=5)),
    ("fig8a", dict(scale=0.08, zipf_params=(1.0, 4.0), n_queries=6)),
    ("fig8b", dict(scale=0.08, index_sizes=(0, 10), view_names=("V3",))),
    ("fig9a", dict(n_records=2000, names=("V1", "V2"))),
    ("fig9b", dict(n_records=2000, names=("V2", "V7"), n_queries=5)),
    ("fig10a", dict(scale=0.1, ratios=(0.1, 1.0))),
    ("fig10b", dict(scale=0.1, update_fractions=(0.1,))),
    ("fig11", dict(scale=0.1)),
    ("fig12", dict(scale=0.1)),
    ("fig13", dict(scale=0.1)),
    ("fig14a", dict()),
    ("fig14b", dict()),
    ("fig16", dict(seconds=60)),
]


@pytest.mark.parametrize("name,kwargs", SMOKE, ids=[s[0] for s in SMOKE])
def test_experiment_smoke(name, kwargs):
    result = E.ALL_EXPERIMENTS[name](**kwargs)
    assert isinstance(result, ExperimentResult)
    assert result.rows
    assert result.to_table()


def test_fig15_smoke():
    result = E.fig15_fixed_throughput_error(
        view_name="V2", ratios=(0.03, 0.1), n_records=2500)
    assert len(result.rows) == 2
    assert all(np.isfinite(r["ivm_max_error_pct"]) for r in result.rows)
