"""Batch-native pipeline mechanics: lazy rows, faithful arrays, pickling.

The equivalence suite (test_columnar_equivalence) checks that the
columnar engine returns the same *values* as the row engine; this module
checks the batch plumbing itself — that operators really do exchange
columns without rebuilding rows, that column arrays are value-faithful
(the null-aware fallback), and that columnar-backed relations pickle as
arrays rather than row tuples.
"""

import pickle

import numpy as np
import pytest

from repro.algebra import (
    Aggregate,
    AggSpec,
    BaseRel,
    ColumnarRelation,
    Hash,
    Join,
    Project,
    Relation,
    Schema,
    Select,
    col,
    evaluate,
    set_columnar_enabled,
)
from repro.algebra.columnar import as_object_array, column_to_array, group_ids


def make_rel(n=100, name="R"):
    return Relation(
        Schema(["id", "grp", "val"]),
        [(i, i % 5, float(i) * 0.5) for i in range(n)],
        key=("id",),
        name=name,
    )


# ----------------------------------------------------------------------
# Lazy rows / zero-rematerialization chaining
# ----------------------------------------------------------------------
class TestLazyRows:
    def test_select_output_is_lazy(self):
        rel = make_rel()
        out = evaluate(Select(BaseRel("R"), col("val") > 10.0), {"R": rel})
        assert not out.is_materialized
        assert len(out) == len([r for r in rel.rows if r[2] > 10.0])
        rows = out.rows  # boundary conversion
        assert out.is_materialized
        assert rows == [r for r in rel.rows if r[2] > 10.0]

    def test_join_output_is_lazy(self):
        left = make_rel(name="L")
        right = Relation(
            Schema(["grp", "w"]), [(g, g * 10) for g in range(5)], name="S"
        )
        out = evaluate(
            Join(BaseRel("L"), BaseRel("S"), on=[("grp", "grp")]),
            {"L": left, "S": right},
        )
        assert not out.is_materialized
        assert len(out) == 100
        assert out.rows[0] == left.rows[0] + (0,)

    def test_projection_output_is_lazy(self):
        rel = make_rel()
        out = evaluate(Project(BaseRel("R"), ["val", "id"]), {"R": rel})
        assert not out.is_materialized
        assert out.rows[:2] == [(0.0, 0), (0.5, 1)]

    def test_computed_projection_vectorizes_lazily(self):
        rel = make_rel()
        out = evaluate(
            Project(BaseRel("R"), [("id", "id"), ("twice", col("val") * 2)]),
            {"R": rel},
        )
        assert not out.is_materialized
        assert out.rows[3] == (3, 3.0)

    def test_eta_output_is_lazy(self):
        rel = make_rel(400)
        out = evaluate(Hash(BaseRel("R"), ("id",), 0.5, seed=1), {"R": rel})
        assert not out.is_materialized
        assert 0 < len(out) < 400

    def test_chain_aggregates_without_materializing_rows(self):
        """σ→⋈→γ reads sliced/gathered columns; no intermediate rows."""
        taken = []
        orig_take = ColumnarRelation.take

        def spying_take(self, indices):
            batch = orig_take(self, indices)
            taken.append(batch)
            return batch

        left = make_rel(name="L")
        right = Relation(
            Schema(["grp", "w"]), [(g, float(g)) for g in range(5)], name="S"
        )
        expr = Aggregate(
            Join(
                Select(BaseRel("L"), col("val") > 5.0),
                BaseRel("S"),
                on=[("grp", "grp")],
            ),
            ("grp",),
            (AggSpec("n", "count"), AggSpec("s", "sum", col("val") + col("w"))),
        )
        ColumnarRelation.take = spying_take
        try:
            fast = evaluate(expr, {"L": left, "S": right})
        finally:
            ColumnarRelation.take = orig_take
        # The σ output batch exists and was never converted to rows.
        assert taken and all(b._pycols == {} for b in taken)
        old = set_columnar_enabled(False)
        try:
            slow = evaluate(expr, {"L": left, "S": right})
        finally:
            set_columnar_enabled(old)
        assert sorted(fast.rows) == pytest.approx(sorted(slow.rows))

    def test_lazy_relation_len_iter_eq(self):
        rel = make_rel(10)
        out = evaluate(Select(BaseRel("R"), col("id") < 5), {"R": rel})
        assert len(out) == 5
        assert list(iter(out)) == rel.rows[:5]
        assert out == Relation(rel.schema, rel.rows[:5])

    def test_columnar_leaf_stays_columnar(self):
        """A lazy relation used as a base leaf is not rematerialized."""
        rel = make_rel()
        view = evaluate(Select(BaseRel("R"), col("val") > 10.0), {"R": rel})
        assert not view.is_materialized
        out = evaluate(
            Aggregate(BaseRel("V"), ("grp",), (AggSpec("n", "count"),)),
            {"V": view},
        )
        assert not view.is_materialized
        assert sum(r[1] for r in out.rows) == len(view)


# ----------------------------------------------------------------------
# Value-faithful column arrays (the null-aware fallback)
# ----------------------------------------------------------------------
class TestFaithfulArrays:
    def test_pure_columns_stay_typed(self):
        assert column_to_array([1, 2, 3]).dtype.kind == "i"
        assert column_to_array([1.0, 2.5]).dtype.kind == "f"
        assert column_to_array([True, False]).dtype.kind == "b"
        assert column_to_array(["a", "bc"]).dtype.kind == "U"
        assert column_to_array([b"a", b"bc"]).dtype.kind == "S"

    @pytest.mark.parametrize(
        "values",
        [
            [None, 1.0, 2.0],  # None must not become nan
            [1, 2.5],  # int must not become 1.0
            [True, 2],  # bool must not become 1
            [np.int64(3), 4],  # numpy scalars must round-trip as given
            ["", 0],  # int must not stringify
            [None, "a"],
        ],
    )
    def test_mixed_columns_fall_back_to_object(self, values):
        arr = column_to_array(values)
        assert arr.dtype == object
        out = arr.tolist()
        assert len(out) == len(values)
        for got, want in zip(out, values):
            assert got is want or got == want
            assert type(got) is type(want)

    def test_round_trip_preserves_python_types(self):
        values = [1, 2, 3]
        assert [type(v) for v in column_to_array(values).tolist()] == [int] * 3

    def test_as_object_array_unboxes_numpy_scalars(self):
        out = as_object_array(np.asarray([1, 2]))
        assert out.dtype == object
        assert all(type(v) is int for v in out)

    def test_group_ids_none_keys_match_row_path(self):
        rel = Relation(
            Schema(["k", "v"]),
            [(None, 1.0), (1, 2.0), (None, 3.0), (1.0, 4.0)],
            name="R",
        )
        gid, keys = group_ids(rel.columnar(), ["k"])
        # Row-path dict grouping: None, then 1 (1.0 folds into it).
        assert keys == [(None,), (1,)]
        assert gid.tolist() == [0, 1, 0, 1]

    def test_mask_on_none_column_matches_row_semantics(self):
        """Ordering comparisons against None raise in both engines."""
        rel = Relation(Schema(["x"]), [(1.0,), (None,)], name="R")
        expr = Select(BaseRel("R"), col("x") > 0.5)
        for enabled in (True, False):
            old = set_columnar_enabled(enabled)
            try:
                with pytest.raises(TypeError):
                    evaluate(expr, {"R": rel})
            finally:
                set_columnar_enabled(old)

    def test_equality_on_none_column_matches_row_semantics(self):
        rel = Relation(Schema(["x"]), [(1,), (None,), (2,)], name="R")
        expr = Select(BaseRel("R"), col("x") == 1)
        old = set_columnar_enabled(True)
        try:
            fast = evaluate(expr, {"R": rel})
            set_columnar_enabled(False)
            slow = evaluate(expr, {"R": rel})
        finally:
            set_columnar_enabled(old)
        assert fast.rows == slow.rows == [(1,)]

    def test_outer_join_padding_flows_through_aggregation(self):
        """None padding from outer joins groups exactly like the row path."""
        left = Relation(Schema(["k", "a"]), [(1, 10), (2, 20)], name="L")
        right = Relation(Schema(["k", "b"]), [(1, 5)], name="S")
        expr = Aggregate(
            Join(BaseRel("L"), BaseRel("S"), on=[("k", "k")], how="left"),
            ("b",),
            (AggSpec("n", "count"), AggSpec("s", "sum", "a")),
        )
        old = set_columnar_enabled(True)
        try:
            fast = evaluate(expr, {"L": left, "S": right})
            set_columnar_enabled(False)
            slow = evaluate(expr, {"L": left, "S": right})
        finally:
            set_columnar_enabled(old)
        assert fast.rows == slow.rows
        assert sorted(fast.rows, key=repr) == [(5, 1, 10), (None, 1, 20)]

    def test_int_division_beyond_2_53_matches_python(self):
        """int/int vector division must not lose exactness via float64."""
        big = (1 << 53) + 1
        rel = Relation(Schema(["a", "b"]), [(big, 1), (10, 4)], name="R")
        expr = Project(BaseRel("R"), [("q", col("a") / col("b"))])
        old = set_columnar_enabled(True)
        try:
            fast = evaluate(expr, {"R": rel})
            set_columnar_enabled(False)
            slow = evaluate(expr, {"R": rel})
        finally:
            set_columnar_enabled(old)
        assert fast.rows == slow.rows

    def test_bool_arithmetic_matches_python_semantics(self):
        """numpy's +/* on bools are logical OR/AND; Python's are numeric.
        Both projected values and masks must use the Python semantics."""
        rel = Relation(
            Schema(["a", "b"]),
            [(True, True), (True, False), (False, False)],
            name="R",
        )
        proj = Project(BaseRel("R"), [("u", col("a") + col("b"))])
        sel = Select(BaseRel("R"), (col("a") + col("b")) > 1)
        for expr, want in ((proj, [(2,), (1,), (0,)]), (sel, [(True, True)])):
            old = set_columnar_enabled(True)
            try:
                fast = evaluate(expr, {"R": rel})
                set_columnar_enabled(False)
                slow = evaluate(expr, {"R": rel})
            finally:
                set_columnar_enabled(old)
            assert fast.rows == slow.rows == want

    def test_projected_division_by_zero_raises_in_both_engines(self):
        rel = Relation(Schema(["a", "b"]), [(1.0, 2.0), (3.0, 0.0)], name="R")
        expr = Project(BaseRel("R"), [("q", col("a") / col("b"))])
        for enabled in (True, False):
            old = set_columnar_enabled(enabled)
            try:
                with pytest.raises(ZeroDivisionError):
                    evaluate(expr, {"R": rel}).rows
            finally:
                set_columnar_enabled(old)


# ----------------------------------------------------------------------
# Storage-aware pickling
# ----------------------------------------------------------------------
class TestPickling:
    def test_row_backed_round_trip(self):
        rel = make_rel(50)
        back = pickle.loads(pickle.dumps(rel))
        assert back.schema == rel.schema
        assert back.rows == rel.rows
        assert back.key == rel.key and back.name == rel.name

    def test_columnar_backed_round_trip_stays_lazy(self):
        rel = make_rel(200)
        out = evaluate(Select(BaseRel("R"), col("val") > 10.0), {"R": rel})
        assert not out.is_materialized
        back = pickle.loads(pickle.dumps(out))
        assert not back.is_materialized  # unpickles as arrays, rows lazy
        assert not out.is_materialized  # pickling did not materialize it
        assert back.rows == [r for r in rel.rows if r[2] > 10.0]

    def test_columnar_payload_smaller_than_rows(self):
        """Float-heavy lazy relations ship as numpy buffers, which beat a
        list of per-row tuples (and skip building the tuples at all)."""
        rng = np.random.default_rng(3)
        rel = Relation(
            Schema(["a", "b", "c", "d"]),
            [tuple(map(float, row)) for row in rng.normal(size=(5000, 4))],
            name="R",
        )
        lazy = evaluate(Select(BaseRel("R"), col("a") > -10.0), {"R": rel})
        assert not lazy.is_materialized
        columnar_payload = len(pickle.dumps(lazy))
        assert not lazy.is_materialized  # shipping never built the rows
        row_payload = len(pickle.dumps(Relation(rel.schema, lazy.rows)))
        assert columnar_payload < row_payload

    def test_caches_dropped_on_pickle(self):
        rel = make_rel(20)
        rel.sample_cache()["x"] = [1, 2, 3]
        rel.columnar().array("val")
        back = pickle.loads(pickle.dumps(rel))
        assert back._sample_cache is None
        assert back._columnar is None

    def test_pickled_lazy_relation_evaluates(self):
        rel = make_rel(100)
        lazy = evaluate(Select(BaseRel("R"), col("grp") == 1), {"R": rel})
        back = pickle.loads(pickle.dumps(lazy))
        out = evaluate(
            Aggregate(BaseRel("V"), (), (AggSpec("s", "sum", "val"),)),
            {"V": back},
        )
        assert out.rows == [(sum(r[2] for r in rel.rows if r[1] == 1),)]


# ----------------------------------------------------------------------
# from_columnar construction path
# ----------------------------------------------------------------------
class TestFromColumnar:
    def test_from_arrays_round_trip(self):
        schema = Schema(["a", "b"])
        batch = ColumnarRelation.from_arrays(
            schema,
            {"a": np.asarray([1, 2, 3]), "b": np.asarray([4.0, 5.0, 6.0])},
            3,
        )
        rel = Relation.from_columnar(batch, key=("a",), name="X")
        assert len(rel) == 3
        assert rel.rows == [(1, 4.0), (2, 5.0), (3, 6.0)]
        assert rel.key == ("a",) and rel.name == "X"

    def test_from_columnar_validates_key(self):
        from repro.errors import SchemaError

        batch = ColumnarRelation.from_arrays(
            Schema(["a"]), {"a": np.asarray([1])}, 1
        )
        with pytest.raises(SchemaError):
            Relation.from_columnar(batch, key=("missing",))

    def test_eta_leaf_cache_shares_batches(self):
        """Repeated η over the same leaf serves the cached gather batch."""
        rel = make_rel(300)
        expr = Hash(BaseRel("R"), ("id",), 0.4, seed=7)
        first = evaluate(expr, {"R": rel})
        second = evaluate(expr, {"R": rel})
        assert first.rows == second.rows
        assert rel._sample_cache  # populated by the first evaluation


class TestProviderRelease:
    """Provider closures must not chain batches across maintenance rounds.

    A provider captures its parent batches (a σ output holds its child,
    a merge output the stale view and the change table).  Once a column
    is cached the provider must be dropped, otherwise every maintenance
    round's view would retain the previous round's batches — an
    unbounded leak for long-lived views.
    """

    def test_provider_dropped_once_column_cached(self):
        schema = Schema(["a", "b"])
        batch = ColumnarRelation.from_providers(
            schema,
            {"a": lambda: np.asarray([1, 2]), "b": lambda: np.asarray([3, 4])},
            2,
        )
        batch.array("a")
        assert "a" not in (batch._providers or {})
        assert batch._providers is not None  # "b" still pending
        batch.array("b")
        assert batch._providers is None  # fully drained
        assert batch.array("a").tolist() == [1, 2]  # cache still serves
        with pytest.raises(KeyError):
            batch.array("missing")

    def test_merge_output_releases_input_batches(self):
        """A fully-read merge result drops its stale/change references."""
        import gc
        import weakref

        from repro.algebra import GROUP_COUNT, Combiner, Merge

        schema_s = Schema(["g", "n", GROUP_COUNT])
        schema_c = Schema(["g", "n", GROUP_COUNT])
        stale = Relation(schema_s, [(g, g, 1) for g in range(50)], name="S")
        change = Relation(schema_c, [(g, 1, 1) for g in range(0, 80, 2)],
                          name="C")
        expr = Merge(
            BaseRel("S"), BaseRel("C"), ("g",),
            [Combiner("g", "group"), Combiner("n", "add"),
             Combiner(GROUP_COUNT, "add")],
        )
        out = evaluate(expr, {"S": stale, "C": change})
        assert not out.is_materialized
        # Weakrefs to the *input* column arrays (ColumnarRelation itself
        # has __slots__ without __weakref__): once the output is fully
        # read and the inputs dropped, nothing may keep them alive.
        ref_s = weakref.ref(stale.columnar().array("n"))
        ref_c = weakref.ref(change.columnar().array("n"))
        out.rows  # materializes every column, draining the providers
        assert out._columnar._providers is None
        del stale, change
        gc.collect()
        assert ref_s() is None and ref_c() is None

    def test_concurrent_reads_of_shared_provider_batch(self):
        """Shared batches may be read from several threads (maintained
        views are queried concurrently); the provider release must never
        turn a benign double-build into a KeyError/TypeError."""
        import threading
        import time

        schema = Schema(["a", "b", "c"])

        def slow_provider(value):
            def build():
                time.sleep(0.001)  # widen the build/release window
                return np.asarray([value] * 10)

            return build

        errors = []
        for _ in range(20):
            batch = ColumnarRelation.from_providers(
                schema, {n: slow_provider(i) for i, n in enumerate(schema.columns)}, 10
            )
            barrier = threading.Barrier(4)

            def reader():
                try:
                    barrier.wait()
                    for n in ("a", "b", "c"):
                        assert batch.array(n).tolist() == [
                            list(schema.columns).index(n)
                        ] * 10
                except Exception as exc:  # noqa: BLE001 - collected for assert
                    errors.append(exc)

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors, errors

    def test_nested_provider_drain(self):
        """A provider that reads a sibling column (gather-of-gather
        chains do this) must survive the release bookkeeping."""
        schema = Schema(["a", "b"])
        holder = {}

        def build_a():
            # Draining "b" while "a" is mid-build empties the dict
            # transiently.
            holder["batch"].array("b")
            return np.asarray([1, 2])

        batch = ColumnarRelation.from_providers(
            schema, {"a": build_a, "b": lambda: np.asarray([3, 4])}, 2
        )
        holder["batch"] = batch
        assert batch.array("a").tolist() == [1, 2]
        assert batch.array("b").tolist() == [3, 4]
        assert batch._providers is None


class TestConcatColumnParts:
    def test_single_pass_same_dtype(self):
        from repro.algebra.columnar import concat_column_parts

        parts = [np.asarray([i, i + 1]) for i in range(5)]
        out = concat_column_parts(parts)
        assert out.dtype.kind == "i"
        assert out.tolist() == [0, 1, 1, 2, 2, 3, 3, 4, 4, 5]

    def test_mixed_dtypes_stay_value_faithful(self):
        from repro.algebra.columnar import concat_column_parts

        parts = [
            np.asarray([1, 2]),
            np.asarray([0.5]),
            column_to_array([None, "x"]),
            np.asarray([], dtype=float),
        ]
        out = concat_column_parts(parts)
        assert out.dtype == object
        assert out.tolist() == [1, 2, 0.5, None, "x"]
        assert type(out[0]) is int and type(out[2]) is float
