"""Fig 12 — Max group error of the roll-up queries.

The paper's point: although updates are only 10% of the data, the worst
dimension slice is far more wrong than the median one when answered
from the stale cube, and SVC+CORR mitigates that worst case.
"""

import numpy as np
from conftest import run_once

from repro.experiments import fig12_max_group_error

COARSE = ("Q1", "Q3", "Q4", "Q9")


def test_fig12_max_group_error(benchmark, record_result):
    result = run_once(benchmark, fig12_max_group_error, scale=0.4)
    record_result(result)
    rows = {r["query"]: r for r in result.rows}
    stale = np.array(result.column("stale_pct"))
    corr = np.array(result.column("svc_corr_pct"))
    # Paper shape: the worst stale slice is much worse than the ~6%
    # median staleness, and SVC+CORR cuts the worst case on average.
    assert stale.max() > 10.0
    assert corr.mean() < stale.mean()
    for q in COARSE:
        assert rows[q]["svc_corr_pct"] < rows[q]["stale_pct"]
