"""Complex Views experiments — paper §7.3 (Figure 7).

Ten TPCD queries materialized as views over the denormalized schema.
V21 (nested aggregate) and V22 (key transformation) block hash push-down
and therefore benefit much less from SVC — the paper's headline
structural result.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algebra.evaluator import evaluate
from repro.core.cleaning import cleaning_expression
from repro.core.svc import StaleViewCleaner
from repro.db.maintenance import choose_strategy
from repro.experiments.harness import ExperimentResult, timed
from repro.workloads.complex_views import (
    build_complex_workload,
    complex_query_attrs,
    generate_denorm_updates,
)
from repro.workloads.queries import QueryGenerator, relative_error

DEFAULT_VIEWS = ("V3", "V4", "V5", "V9", "V10", "V13", "V15", "V18", "V21", "V22")


def _workload(scale: float, seed: int, update_fraction: float):
    db, catalog, views = build_complex_workload(scale=scale, seed=seed)
    generate_denorm_updates(db, update_fraction, seed=seed)
    return db, catalog, views


def fig7a_maintenance(
    scale: float = 0.3,
    ratio: float = 0.1,
    update_fraction: float = 0.1,
    names: Sequence[str] = DEFAULT_VIEWS,
    seed: int = 42,
) -> ExperimentResult:
    """Fig 7(a): IVM vs SVC-10% maintenance time per complex view."""
    db, catalog, views = _workload(scale, seed, update_fraction)
    result = ExperimentResult(
        "fig7a", "Complex Views: maintenance time (s)",
        notes="paper: SVC ≪ IVM except V21/V22 where nesting blocks "
              "hash push-down",
    )
    for name in names:
        view = views[name]
        strategy = choose_strategy(view)
        ivm_t = timed(lambda: evaluate(strategy.expr, db.leaves()), repeat=3)
        expr, report = cleaning_expression(view, ratio, seed, strategy)
        evaluate(expr, db.leaves())  # warm sample caches
        svc_t = timed(lambda: evaluate(expr, db.leaves()), repeat=3)
        result.add(
            view=name,
            ivm_seconds=ivm_t,
            svc_seconds=svc_t,
            speedup=ivm_t / svc_t if svc_t > 0 else float("inf"),
            pushdown_blocked=len(report.blocked_at),
            strategy=strategy.kind,
        )
    return result


def fig7b_accuracy(
    scale: float = 0.3,
    ratio: float = 0.1,
    update_fraction: float = 0.1,
    names: Sequence[str] = DEFAULT_VIEWS,
    n_queries: int = 20,
    seed: int = 42,
) -> ExperimentResult:
    """Fig 7(b): stale vs SVC+AQP vs SVC+CORR error per complex view."""
    db, catalog, views = _workload(scale, seed, update_fraction)
    result = ExperimentResult(
        "fig7b", "Complex Views: generated query accuracy "
                 "(median relative error %)",
        notes="paper: SVC+CORR most accurate, then SVC+AQP, then stale",
    )
    for name in names:
        view = views[name]
        svc = StaleViewCleaner(view, ratio=ratio, seed=seed)
        svc.refresh()
        fresh = view.fresh_data()
        pred_attrs, agg_attrs = complex_query_attrs(name)
        qgen = QueryGenerator(view.require_data(), pred_attrs, agg_attrs,
                              funcs=("sum", "count", "avg"), seed=seed)
        stale_errs, aqp_errs, corr_errs = [], [], []
        for q in qgen.batch(n_queries):
            truth = q.evaluate(fresh)
            stale_errs.append(relative_error(svc.stale_answer(q), truth))
            aqp_errs.append(
                relative_error(svc.query(q, method="aqp").value, truth))
            corr_errs.append(
                relative_error(svc.query(q, method="corr").value, truth))
        result.add(
            view=name,
            stale_pct=100 * float(np.median(stale_errs)),
            svc_aqp_pct=100 * float(np.median(aqp_errs)),
            svc_corr_pct=100 * float(np.median(corr_errs)),
        )
    return result
