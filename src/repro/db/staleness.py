"""Staleness as data error — paper §3.1.

Given a stale view S and the up-to-date view S' (both keyed by the same
primary key u), the consequences of staleness are classified as:

* **incorrect** rows — present in both by key but with different values,
* **missing** rows — in S' but not in S,
* **superfluous** rows — in S but not in S'.

:func:`classify` computes the three sets; the result also powers the
relative-error analyses and the select-query correction (§12.1.2).
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.algebra.relation import Relation
from repro.errors import SchemaError


@dataclass
class StalenessReport:
    """The data-error decomposition of a stale view."""

    incorrect: Set[tuple] = field(default_factory=set)
    missing: Set[tuple] = field(default_factory=set)
    superfluous: Set[tuple] = field(default_factory=set)
    unchanged: Set[tuple] = field(default_factory=set)

    @property
    def total_errors(self) -> int:
        """Number of rows affected by staleness."""
        return len(self.incorrect) + len(self.missing) + len(self.superfluous)

    def is_fresh(self) -> bool:
        """True when the stale view equals the up-to-date view."""
        return self.total_errors == 0

    def summary(self) -> Dict[str, int]:
        """Counts per error class."""
        return {
            "incorrect": len(self.incorrect),
            "missing": len(self.missing),
            "superfluous": len(self.superfluous),
            "unchanged": len(self.unchanged),
        }


#: Numeric kinds that compare with tolerance.  ``numbers.Real`` covers
#: ``bool`` (an ``int`` subclass), ``int``, ``float``, and every numpy
#: scalar type (numpy registers them as ``Real``), so this covers every
#: numeric value a maintained or recomputed view can hold.
_NUMERIC = numbers.Real


def _values_equal(a, b, rel_tol: float) -> bool:
    if a == b:
        return True
    if isinstance(a, _NUMERIC) and isinstance(b, _NUMERIC):
        # Incremental maintenance and recomputation disagree on both
        # accumulation order *and* dtype: a change-table merge can keep a
        # count as int where a recompute produces float (or numpy
        # scalars, or bool for 0/1 flags).  All numeric pairs therefore
        # compare numerically with the same relative tolerance — a
        # ``1.0`` vs ``1 + ε`` pair is rounding drift, not an incorrect
        # row.
        return abs(a - b) <= rel_tol * max(abs(a), abs(b), 1.0)
    return False


def rows_equal(a: tuple, b: tuple, rel_tol: float = 1e-9) -> bool:
    """Row equality with relative tolerance on float fields."""
    return len(a) == len(b) and all(
        _values_equal(x, y, rel_tol) for x, y in zip(a, b)
    )


def classify(
    stale: Relation, fresh: Relation, rel_tol: float = 1e-9
) -> StalenessReport:
    """Classify staleness errors between two keyed relations.

    Both relations must share the same schema and primary key.  Float
    fields compare with relative tolerance ``rel_tol`` (incremental and
    recomputed sums differ by summation order).
    """
    if stale.schema != fresh.schema:
        raise SchemaError(
            f"stale/fresh schemas differ: {stale.schema!r} vs {fresh.schema!r}"
        )
    if not stale.key or stale.key != fresh.key:
        raise SchemaError(
            f"stale/fresh views must share a primary key "
            f"({stale.key!r} vs {fresh.key!r})"
        )
    stale_index = stale.key_index()
    fresh_index = fresh.key_index()
    report = StalenessReport()
    for key, row in stale_index.items():
        fresh_row = fresh_index.get(key)
        if fresh_row is None:
            report.superfluous.add(key)
        elif not rows_equal(row, fresh_row, rel_tol):
            report.incorrect.add(key)
        else:
            report.unchanged.add(key)
    for key in fresh_index:
        if key not in stale_index:
            report.missing.add(key)
    return report


def changed_rows(
    stale: Relation, fresh: Relation
) -> List[Tuple[tuple, tuple, tuple]]:
    """(key, stale_row_or_None, fresh_row_or_None) for every affected key."""
    report = classify(stale, fresh)
    stale_index = stale.key_index()
    fresh_index = fresh.key_index()
    out = []
    for key in report.incorrect:
        out.append((key, stale_index[key], fresh_index[key]))
    for key in report.missing:
        out.append((key, None, fresh_index[key]))
    for key in report.superfluous:
        out.append((key, stale_index[key], None))
    return out
