"""Benchmark: serving reads during maintenance — epoch pins vs locking.

A 90/10 read/write mix runs against :class:`repro.serving.ViewServer`
while maintenance rounds are *in flight*: each round, one delta batch is
ingested, a maintainer thread runs ``run_tick``, and the foreground
issues SVC reads (nine reads per enqueued write) until the round
finishes.  Two read paths are compared over identical workloads:

* ``epoch`` — the serving design: reads pin the current epoch and never
  touch the maintenance lock, so they proceed at full speed while the
  cleaner refreshes Ŝ' next door.
* ``locked`` — the counterfactual without epochs: every read acquires
  the maintenance lock (what a single-version server would do to avoid
  torn reads), so readers stall for the remainder of any running round.

Gates (both full and ``--quick`` CI runs):

* **equivalence** — a deterministic ingest → ``run_tick`` → query
  sequence must produce exactly the serial ``StaleViewCleaner``
  estimate (value and standard error) at the same ratio and seed;
* **speedup** — epoch-pinned read throughput during maintenance must
  beat the locked counterfactual by ``SPEEDUP_GATE``×.

The full run additionally requires the epoch-pinned p99 read latency to
stay under the mean maintenance-round duration — the "no reader ever
waits out a full round" criterion; the quick run records it without
gating (1–2 noisy CI cores).

Run under pytest (``pytest benchmarks/bench_serving_throughput.py
[--quick]``) or standalone (``python
benchmarks/bench_serving_throughput.py [--quick]``).
"""

import threading
import time

import numpy as np

from repro.algebra import AggSpec, Aggregate, BaseRel, Relation, Schema, col
from repro.core import AggQuery, StaleViewCleaner
from repro.db import Catalog, Database
from repro.serving import FreshnessScheduler, FreshnessSLA, ViewServer

FULL_ROWS = 40_000
QUICK_ROWS = 6_000
FULL_ROUNDS = 30
QUICK_ROUNDS = 12
GROUP_DIVISOR = 25  # n_groups = rows / 25
BATCH_DIVISOR = 10  # delta batch rows = rows / 10 per round
RATIO = 0.1
READS_PER_WRITE = 9  # the 90/10 mix
#: Epoch-pinned reads must outrun lock-blocked reads by this much while
#: a maintenance round is in flight.  Gated in every mode — this is the
#: acceptance criterion of the serving layer.
SPEEDUP_GATE = 2.0
#: The regression-checked ``speedup`` metric saturates here: past this
#: point the margin only measures how fast the machine is, not whether
#: readers block (the raw ratio is recorded as ``raw_speedup``).  A real
#: regression — readers serializing behind maintenance — lands near 1x,
#: far below the capped baseline's floor.
SPEEDUP_CAP = 4.0
#: Full mode only: p99 epoch-pinned read latency vs mean round time.
FULL_P99_GATE = 1.0


def _build(n_rows: int, seed: int = 17):
    n_groups = max(40, n_rows // GROUP_DIVISOR)
    rng = np.random.default_rng(seed)
    db = Database()
    db.add_relation(Relation(
        Schema(["id", "grp", "val"]),
        [(i, int(rng.integers(0, n_groups)), float(rng.exponential(25.0)))
         for i in range(n_rows)],
        key=("id",), name="events",
    ))
    catalog = Catalog(db)
    catalog.create_view("byGroup", Aggregate(
        BaseRel("events"), ["grp"],
        [AggSpec("n", "count"), AggSpec("total", "sum", col("val"))],
    ))
    return db, catalog, n_groups


def _server(catalog) -> ViewServer:
    server = ViewServer(catalog, scheduler=FreshnessScheduler(budget_s=5.0))
    server.register("byGroup", sla=FreshnessSLA(
        max_staleness_s=1e-4, target_ratio=RATIO, min_ratio=0.02,
        max_pending_fraction=0.9,
    ))
    return server


def _batch(n_rows: int, n_groups: int, round_no: int, seed: int = 17):
    rng = np.random.default_rng(seed * 1000 + round_no)
    n = n_rows // BATCH_DIVISOR
    base = 1_000_000 + round_no * n
    return [
        (base + i, int(g), float(v))
        for i, (g, v) in enumerate(zip(
            rng.integers(0, n_groups, n), rng.exponential(25.0, n),
        ))
    ]


def _run_mode(locked: bool, n_rows: int, rounds: int) -> dict:
    """The 90/10 mix against in-flight maintenance rounds."""
    db, catalog, n_groups = _build(n_rows)
    server = _server(catalog)
    query = AggQuery("sum", "total", col("grp") < n_groups // 2)
    latencies = []
    round_seconds = []
    reads = 0
    for r in range(rounds):
        server.ingest("events", inserts=_batch(n_rows, n_groups, r))
        done = threading.Event()

        def tick():
            t0 = time.perf_counter()
            server.run_tick()
            round_seconds.append(time.perf_counter() - t0)
            done.set()

        maintainer = threading.Thread(target=tick)
        maintainer.start()
        ops = 0
        # At least one read races every round, however fast the round.
        while ops == 0 or not done.is_set():
            if ops % (READS_PER_WRITE + 1) == READS_PER_WRITE:
                # The write side of the mix: enqueue-only, never blocks.
                server.ingest("events",
                              inserts=[(2_000_000 + r * 1000 + ops,
                                        ops % n_groups, 1.0)],
                              block=False)
            else:
                t0 = time.perf_counter()
                if locked:
                    with server._maintenance_lock:
                        server.query("byGroup", query)
                else:
                    server.query("byGroup", query)
                latencies.append(time.perf_counter() - t0)
                reads += 1
            ops += 1
        maintainer.join()
    lat = np.array(latencies)
    maintenance_s = float(sum(round_seconds))
    return {
        "reads": reads,
        "rounds": len(round_seconds),
        "reads_per_s": reads / maintenance_s,
        "read_p50_s": float(np.percentile(lat, 50)),
        "read_p99_s": float(np.percentile(lat, 99)),
        "mean_round_s": maintenance_s / len(round_seconds),
    }


def _check_equivalence(n_rows: int) -> None:
    """Epoch-pinned estimates must equal the serial SVC baseline."""
    db, catalog, n_groups = _build(n_rows)
    server = _server(catalog)
    inserts = _batch(n_rows, n_groups, 0)
    server.ingest("events", inserts=inserts)
    server.run_tick()
    query = AggQuery("sum", "total", col("grp") < n_groups // 2)
    est = server.query("byGroup", query)

    db2, catalog2, _ = _build(n_rows)
    db2.insert("events", inserts)
    svc = StaleViewCleaner(catalog2.view("byGroup"), ratio=RATIO, seed=0)
    svc.refresh()
    base = svc.query(query, method="corr")
    assert abs(est.value - base.value) <= 1e-9 * max(1.0, abs(base.value)), (
        f"serving estimate {est.value} != serial baseline {base.value}"
    )
    assert abs(est.se - base.se) <= 1e-9 * max(1.0, abs(base.se))


def run_bench(n_rows: int = FULL_ROWS, rounds: int = FULL_ROUNDS) -> dict:
    _check_equivalence(n_rows)
    epoch = _run_mode(locked=False, n_rows=n_rows, rounds=rounds)
    locked = _run_mode(locked=True, n_rows=n_rows, rounds=rounds)
    return {
        "n_rows": n_rows,
        "rounds": rounds,
        "epoch_reads": epoch["reads"],
        "locked_reads": locked["reads"],
        "epoch_reads_per_s": epoch["reads_per_s"],
        "locked_reads_per_s": locked["reads_per_s"],
        "epoch_read_p50_s": epoch["read_p50_s"],
        "epoch_read_p99_s": epoch["read_p99_s"],
        "locked_read_p50_s": locked["read_p50_s"],
        "locked_read_p99_s": locked["read_p99_s"],
        "mean_round_s": epoch["mean_round_s"],
        "raw_speedup": epoch["reads_per_s"] / locked["reads_per_s"],
        "speedup": min(epoch["reads_per_s"] / locked["reads_per_s"],
                       SPEEDUP_CAP),
        "p99_vs_round": epoch["read_p99_s"] / epoch["mean_round_s"],
    }


def to_table(result: dict) -> str:
    return "\n".join([
        "bench_serving_throughput — reads during maintenance, "
        "epoch pins vs locking",
        f"rows: {result['n_rows']}   rounds: {result['rounds']}   "
        f"mix: {READS_PER_WRITE}:1 read/write   ratio: {RATIO}",
        f"reads while maintaining: epoch {result['epoch_reads']:6d} "
        f"({result['epoch_reads_per_s']:8.0f}/s)   locked "
        f"{result['locked_reads']:6d} "
        f"({result['locked_reads_per_s']:8.0f}/s)   "
        f"speedup {result['raw_speedup']:.1f}x",
        f"read p50/p99: epoch {result['epoch_read_p50_s'] * 1e6:7.0f} / "
        f"{result['epoch_read_p99_s'] * 1e6:7.0f} us   locked "
        f"{result['locked_read_p50_s'] * 1e6:7.0f} / "
        f"{result['locked_read_p99_s'] * 1e6:7.0f} us",
        f"mean maintenance round: {result['mean_round_s'] * 1e3:.1f} ms   "
        f"epoch p99 / round: {result['p99_vs_round']:.2f}",
    ])


def test_serving_throughput_and_equivalence(benchmark, quick, record_json):
    from conftest import run_once

    n_rows = QUICK_ROWS if quick else FULL_ROWS
    rounds = QUICK_ROUNDS if quick else FULL_ROUNDS
    result = run_once(benchmark, run_bench, n_rows=n_rows, rounds=rounds)
    print("\n" + to_table(result))
    record_json(
        "bench_serving_throughput",
        result,
        {
            "n_rows": n_rows,
            "rounds": rounds,
            "quick": quick,
            "reads_per_write": READS_PER_WRITE,
            "speedup_gate": SPEEDUP_GATE,
            "p99_gate": None if quick else FULL_P99_GATE,
        },
    )
    assert result["raw_speedup"] >= SPEEDUP_GATE, (
        f"epoch-pinned reads only {result['raw_speedup']:.1f}x faster "
        f"than lock-blocked reads during maintenance "
        f"(need >= {SPEEDUP_GATE}x)"
    )
    if not quick:
        assert result["p99_vs_round"] <= FULL_P99_GATE, (
            f"epoch-pinned p99 read latency is "
            f"{result['p99_vs_round']:.2f}x the mean maintenance round "
            f"(readers are waiting out rounds; need <= {FULL_P99_GATE})"
        )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small workload")
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    args = parser.parse_args()
    n_rows = args.rows or (QUICK_ROWS if args.quick else FULL_ROWS)
    rounds = args.rounds or (QUICK_ROUNDS if args.quick else FULL_ROUNDS)
    result = run_bench(n_rows=n_rows, rounds=rounds)
    from conftest import write_json_result

    write_json_result(
        "bench_serving_throughput",
        result,
        {"n_rows": n_rows, "rounds": rounds, "quick": args.quick,
         "reads_per_write": READS_PER_WRITE, "speedup_gate": SPEEDUP_GATE},
    )
    print(to_table(result))
