"""Concurrency stress: reads vs live maintenance, and degraded-SLA CI.

Two gates from the serving-layer acceptance criteria:

* **No torn reads** — with a background maintainer publishing epochs
  while producer threads ingest and reader threads query, every read
  must observe exactly one internally consistent epoch.  Consistency is
  checked by fingerprint: a given epoch number must always expose the
  same (watermark, estimate, stale answer) triple, across all readers
  and all reads.  A torn snapshot (stale view from one round, samples
  from another) would make the same epoch answer differently.
* **Degradation stays honest** — when the scheduler runs out of budget
  and shrinks the sampling ratio, the published estimates are still
  SVC+CORR estimates at the smaller ratio: their confidence intervals
  must keep near-nominal empirical coverage (the §7.6 trade-off is
  variance for budget, never correctness).
"""

import threading

import numpy as np
import pytest

from repro.algebra import AggSpec, Aggregate, BaseRel, Relation, Schema, col
from repro.core import AggQuery
from repro.db import Catalog, Database
from repro.serving import FreshnessScheduler, FreshnessSLA, ViewServer

READERS = 4
READS_PER_READER = 150
BATCHES = 30
BATCH_ROWS = 40


def _build_catalog(n_rows=2000, n_groups=100, seed=13):
    rng = np.random.default_rng(seed)
    db = Database()
    db.add_relation(Relation(
        Schema(["id", "grp", "val"]),
        [(i, int(rng.integers(0, n_groups)), float(rng.exponential(25.0)))
         for i in range(n_rows)],
        key=("id",), name="events",
    ))
    catalog = Catalog(db)
    catalog.create_view("byGroup", Aggregate(
        BaseRel("events"), ["grp"],
        [AggSpec("n", "count"), AggSpec("total", "sum", col("val"))],
    ))
    return db, catalog


class TestConcurrentServing:
    def test_every_read_observes_one_consistent_epoch(self):
        db, catalog = _build_catalog()
        server = ViewServer(catalog,
                            scheduler=FreshnessScheduler(budget_s=0.5))
        # Tiny freshness SLA: every tick is allowed to clean, so the
        # readers race against a steady stream of epoch publishes.
        server.register("byGroup", ratio=0.2,
                        sla=FreshnessSLA(max_staleness_s=1e-4,
                                         target_ratio=0.2, min_ratio=0.05,
                                         max_pending_fraction=0.5))
        query = AggQuery("sum", "total", col("grp") < 50)
        epochs = server.epoch_manager("byGroup")

        observations = []  # (reader, epoch, watermark, value, stale)
        errors = []
        produced = threading.Event()

        def producer():
            rng = np.random.default_rng(99)
            try:
                for b in range(BATCHES):
                    server.ingest("events", inserts=[
                        (100_000 + b * BATCH_ROWS + i,
                         int(rng.integers(0, 100)),
                         float(rng.exponential(25.0)))
                        for i in range(BATCH_ROWS)
                    ], timeout=10.0)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)
            finally:
                produced.set()

        def reader(idx):
            try:
                local = []
                for _ in range(READS_PER_READER):
                    with epochs.pin() as snap:
                        est = snap.estimate(query)
                        local.append((idx, snap.epoch, snap.watermark,
                                      est.value, snap.stale_answer(query)))
                observations.extend(local)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        server.start(tick_interval=0.002)
        threads = [threading.Thread(target=producer)] + [
            threading.Thread(target=reader, args=(i,))
            for i in range(READERS)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
        finally:
            server.stop()

        assert not errors, errors
        assert produced.is_set()
        assert len(observations) == READERS * READS_PER_READER

        # Torn-read gate: one epoch, one answer.  If any reader saw a
        # snapshot assembled from two different rounds, that epoch would
        # fingerprint differently across reads.
        by_epoch = {}
        for _, epoch, watermark, value, stale in observations:
            fingerprint = (watermark, value, stale)
            by_epoch.setdefault(epoch, set()).add(fingerprint)
        torn = {e: fps for e, fps in by_epoch.items() if len(fps) > 1}
        assert not torn, f"inconsistent epochs observed: {torn}"

        # Each reader saw epochs in publish order (monotone pins).
        for idx in range(READERS):
            seen = [e for r, e, *_ in observations if r == idx]
            assert seen == sorted(seen)

        # Maintenance really ran concurrently with the reads, and every
        # superseded epoch was reclaimed once its readers unpinned.
        stats = epochs.stats()
        assert stats.published >= 2
        assert stats.pinned_readers == 0
        assert stats.live == 1
        assert stats.reclaimed == stats.published - 1

        # Quiesced server still agrees with ground truth after a full
        # maintenance period (nothing was lost in the races).
        server.maintain_now()
        truth = query.evaluate(catalog.view("byGroup").fresh_data())
        assert server.query("byGroup", query).value == pytest.approx(truth)

    def test_background_maintainer_drains_while_readers_query(self):
        db, catalog = _build_catalog(n_rows=500, n_groups=40)
        server = ViewServer(catalog)
        server.register("byGroup", ratio=0.25)
        query = AggQuery("sum", "n")
        server.start(tick_interval=0.002)
        try:
            for b in range(10):
                server.ingest("events", inserts=[
                    (200_000 + b * 10 + i, i % 40, 1.0) for i in range(10)
                ], timeout=10.0)
                server.query("byGroup", query)
        finally:
            server.stop()
        assert server.pending_batches() == 0
        stats = server.stats()
        assert stats.ingested_rows == 100
        assert stats.reads == 10
        # Starting twice is an error; stopping twice is not.
        server.stop()


class TestDegradedCoverage:
    #: 95% nominal minus the small-trial tolerance used repo-wide.
    CONFIDENCE = 0.95
    TOLERANCE = 0.10
    TRIALS = 30

    def test_degraded_rounds_keep_ci_coverage(self):
        """Budget-degraded epochs still pass the SVC CI coverage gate."""
        db, catalog = _build_catalog(n_rows=1500, n_groups=250, seed=21)
        rng = np.random.default_rng(77)
        inserts = [
            (500_000 + i, int(rng.integers(0, 250)),
             float(rng.exponential(25.0)))
            for i in range(250)
        ]
        queries = [
            AggQuery("sum", "total"),
            AggQuery("sum", "total", col("grp") < 125),
        ]
        hits = {i: 0 for i in range(len(queries))}
        degraded_ratio = None
        for seed in range(self.TRIALS):
            server = ViewServer(
                catalog, scheduler=FreshnessScheduler(budget_s=0.5)
            )
            server.register(
                "byGroup", seed=seed,
                sla=FreshnessSLA(max_staleness_s=1e-4, target_ratio=0.25,
                                 min_ratio=0.05, max_pending_fraction=0.9),
            )
            server.ingest("events", inserts=inserts)
            # Force the degraded path: pretend target-ratio rounds cost
            # 1 s and grant 0.4 s -> the ratio shrinks 0.25 -> 0.1.
            server._served["byGroup"].cost_ewma_s = 1.0
            (report,) = server.run_tick(budget_s=0.4)
            assert report.kind == "degraded"
            degraded_ratio = report.ratio
            for i, q in enumerate(queries):
                est = server.query("byGroup", q,
                                   confidence=self.CONFIDENCE)
                if est.contains(q.evaluate(
                        catalog.view("byGroup").fresh_data())):
                    hits[i] += 1
            # The catalog is shared across trials: the server only read
            # deltas, never applied them, so drop them for the next one.
            db.deltas.clear()

        assert degraded_ratio == pytest.approx(0.1)
        floor = self.CONFIDENCE - self.TOLERANCE
        rates = {i: hits[i] / self.TRIALS for i in hits}
        assert all(r >= floor for r in rates.values()), (
            f"degraded-epoch CI coverage below {floor:.0%}: {rates}"
        )
