"""The tuner's flight recorder: a bounded, replayable decision log.

Every round the tuner decides anything, one :class:`Decision` lands
here: the workload features it saw, every candidate configuration it
considered with its predicted cost, which it chose, and — once the
round finishes — the observed cost and the regret against the
best-predicted candidate.  Records hold only primitives (ints, floats,
strings, tuples), so the log pickles and JSON-serializes without
custom reducers, and the embedded :class:`HardwareProbe` snapshot makes
a recorded run self-contained: replaying it on a different machine
reproduces the exact same decisions (``tests/tuning/
test_replay_determinism.py``).

The log is bounded (default 256 decisions, oldest evicted first) so an
always-on server cannot grow it without limit; ``total_recorded`` keeps
counting past evictions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.tuning.probe import HardwareProbe

ConfigKey = Tuple[int, str, str, str]  # (shards, backend, transport, engine)


@dataclass(frozen=True)
class Decision:
    """One tuning decision, predicted and (eventually) observed."""

    index: int
    features: Tuple  # RoundFeatures.key()
    candidates: Tuple[Tuple[ConfigKey, float], ...]  # (config, predicted_s)
    chosen: ConfigKey
    predicted_s: float
    best_predicted_s: float
    switched: bool
    observed_s: float = -1.0  # -1 until the round completes

    @property
    def regret_s(self) -> float:
        """Predicted cost sacrificed to hysteresis (0 when chosen=best)."""
        return max(self.predicted_s - self.best_predicted_s, 0.0)

    def to_record(self) -> dict:
        return {
            "index": self.index,
            "features": list(self.features),
            "candidates": [
                {"config": list(key), "predicted_s": pred}
                for key, pred in self.candidates
            ],
            "chosen": list(self.chosen),
            "predicted_s": self.predicted_s,
            "best_predicted_s": self.best_predicted_s,
            "regret_s": self.regret_s,
            "switched": self.switched,
            "observed_s": self.observed_s,
        }

    @classmethod
    def from_record(cls, rec: dict) -> "Decision":
        return cls(
            index=int(rec["index"]),
            features=tuple(rec["features"]),
            candidates=tuple(
                (tuple(c["config"]), float(c["predicted_s"]))
                for c in rec["candidates"]
            ),
            chosen=tuple(rec["chosen"]),
            predicted_s=float(rec["predicted_s"]),
            best_predicted_s=float(rec["best_predicted_s"]),
            switched=bool(rec["switched"]),
            observed_s=float(rec["observed_s"]),
        )


@dataclass
class DecisionLog:
    """Bounded append-only record of every tuning decision."""

    limit: int = 256
    decisions: List[Decision] = field(default_factory=list)
    total_recorded: int = 0

    def append(self, decision: Decision) -> None:
        self.decisions.append(decision)
        self.total_recorded += 1
        if len(self.decisions) > self.limit:
            del self.decisions[: len(self.decisions) - self.limit]

    def finish(self, decision: Decision, observed_s: float) -> Decision:
        """Record the observed cost on a previously-appended decision."""
        done = replace(decision, observed_s=float(observed_s))
        for i in range(len(self.decisions) - 1, -1, -1):
            if self.decisions[i].index == decision.index:
                self.decisions[i] = done
                break
        return done

    def last(self) -> Optional[Decision]:
        return self.decisions[-1] if self.decisions else None

    def to_json(self, probe: HardwareProbe, indent: int = 2) -> str:
        return json.dumps(
            {
                "probe": probe.to_dict(),
                "total_recorded": self.total_recorded,
                "decisions": [d.to_record() for d in self.decisions],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str,
                  limit: int = 256) -> Tuple[HardwareProbe, "DecisionLog"]:
        data = json.loads(text)
        probe = HardwareProbe.from_dict(data["probe"])
        log = cls(limit=limit)
        log.decisions = [Decision.from_record(r) for r in data["decisions"]]
        log.total_recorded = int(data.get("total_recorded",
                                          len(log.decisions)))
        return probe, log


def replay_decisions(probe: HardwareProbe,
                     decisions: Sequence[Decision]) -> List[Decision]:
    """Re-run a recorded log through a fresh tuner, decision by decision.

    Feeds each recorded round's features to ``Tuner.choose`` and its
    recorded observed cost to ``Tuner.observe`` — the same inputs the
    original run saw — and returns the decisions the fresh tuner makes.
    A deterministic tuner yields a bit-identical sequence.
    """
    from repro.tuning.costmodel import RoundFeatures
    from repro.tuning.tuner import Tuner

    tuner = Tuner(probe=probe)
    replayed: List[Decision] = []
    for rec in decisions:
        decision = tuner.choose(RoundFeatures.from_key(rec.features))
        if rec.observed_s >= 0.0:
            decision = tuner.observe(decision, rec.observed_s)
        replayed.append(decision)
    return replayed
