"""REP002: shared-memory segments flow through the transport only.

The coordinator owns every segment: creation registers it for retire /
atexit unlink, attachment goes through the tracker-aware helper, and
``unlink`` happens exactly once on the owning side (PR 5's
worker-spawned resource tracker and PR 7's leak audit were both
violations of this protocol).  Raw ``SharedMemory(create=True)`` or
``.unlink()`` anywhere outside the transport module and the hardware
probe bypasses that lifecycle.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.context import ModuleContext, call_name
from repro.analysis.findings import Finding
from repro.analysis.registry import FileChecker, register_checker

#: Modules allowed to create/unlink segments (path suffixes).
ALLOWED_SUFFIXES: Tuple[str, ...] = (
    "repro/distributed/transport.py",
    "repro/tuning/probe.py",
)


def _is_create_call(node: ast.Call) -> bool:
    if call_name(node) != "SharedMemory":
        return False
    for kw in node.keywords:
        if kw.arg == "create" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    # SharedMemory(name, True) — positional create flag.
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
        return bool(node.args[1].value)
    return False


def _is_unlink_call(node: ast.Call) -> bool:
    # ``seg.unlink()`` takes no arguments; pathlib's unlink(missing_ok=)
    # is the usual same-named bystander, so any argument disqualifies.
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "unlink"
        and not node.args
        and not node.keywords
    )


@register_checker
class SharedMemoryLifecycleChecker(FileChecker):
    rule = "REP002"
    name = "raw-shared-memory"
    title = "SharedMemory lifecycle outside the transport/probe allowlist"
    severity = "error"

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        if module.rel.endswith(ALLOWED_SUFFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_create_call(node):
                yield self.finding(
                    module,
                    node,
                    "raw SharedMemory(create=True) outside the shard "
                    "transport bypasses segment ownership and atexit "
                    "unlink",
                    hint=(
                        "export through repro.distributed.transport (the "
                        "coordinator-owned store) instead of creating "
                        "segments directly"
                    ),
                )
            elif _is_unlink_call(node):
                yield self.finding(
                    module,
                    node,
                    ".unlink() outside the shard transport can retire a "
                    "segment the coordinator still owns",
                    hint=(
                        "retire segments through the transport store "
                        "(retire/close_store); if this is a pathlib "
                        "unlink, suppress with a reason"
                    ),
                )
