"""Fig 9 — Conviva log-analysis views: maintenance speedup and accuracy."""

import numpy as np
from conftest import run_once

from repro.experiments import fig9a_maintenance, fig9b_accuracy


def test_fig9a_conviva_maintenance(benchmark, record_result):
    result = run_once(benchmark, fig9a_maintenance, n_records=20_000)
    record_result(result)
    speedups = result.column("speedup")
    # Paper shape: ~7.5x average speedup for SVC-10%.
    assert np.mean(speedups) > 3.0


def test_fig9b_conviva_accuracy(benchmark, record_result):
    result = run_once(benchmark, fig9b_accuracy, n_records=20_000)
    record_result(result)
    stale = np.array(result.column("stale_pct"))
    corr = np.array(result.column("svc_corr_pct"))
    # Paper shape: SVC answers within a few percent, well below stale.
    assert corr.mean() < stale.mean()
    assert corr.mean() < 5.0
