"""The aggregate (data cube) view — paper §7.6.1 and §12.6.3.

The base cube materializes revenue grouped by
(c_custkey, n_nationkey, r_regionkey, l_partkey) over the join of
lineitem, orders, customer, nation and region; the thirteen roll-up
queries aggregate the ``revenue`` measure over every dimension subset
listed in §12.6.3 (sum by default; the Fig 13 variant uses median).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.algebra.expressions import AggSpec, Aggregate, BaseRel, Join
from repro.algebra.predicates import col
from repro.core.estimators import AggQuery
from repro.db.catalog import Catalog
from repro.db.database import Database
from repro.db.view import MaterializedView

CUBE_VIEW_NAME = "basecube"

CUBE_DIMENSIONS = ("c_custkey", "n_nationkey", "r_regionkey", "l_partkey")

#: Sampling attribute used by the experiments: hashing the part key (a
#: subset of the cube key, paper §12.5) pushes the sampler all the way
#: into the lineitem fact table and through the whole dimension chain.
CUBE_SAMPLE_ATTRS = ("l_partkey",)

#: The 13 roll-up groupings of §12.6.3 (Q1 = grand total).
ROLLUP_GROUPINGS: List[Tuple[str, Tuple[str, ...]]] = [
    ("Q1", ()),
    ("Q2", ("c_custkey",)),
    ("Q3", ("n_nationkey",)),
    ("Q4", ("r_regionkey",)),
    ("Q5", ("l_partkey",)),
    ("Q6", ("c_custkey", "n_nationkey")),
    ("Q7", ("c_custkey", "r_regionkey")),
    ("Q8", ("c_custkey", "l_partkey")),
    ("Q9", ("n_nationkey", "r_regionkey")),
    ("Q10", ("n_nationkey", "l_partkey")),
    ("Q11", ("c_custkey", "n_nationkey", "r_regionkey")),
    ("Q12", ("c_custkey", "n_nationkey", "l_partkey")),
    ("Q13", ("n_nationkey", "r_regionkey", "l_partkey")),
]


def cube_definition():
    """γ over the five-table join per the appendix SQL (§12.6.3)."""
    join = Join(
        Join(
            Join(
                Join(
                    BaseRel("lineitem"), BaseRel("orders"),
                    on=[("l_orderkey", "o_orderkey")], foreign_key=True,
                ),
                BaseRel("customer"),
                on=[("o_custkey", "c_custkey")], foreign_key=True,
            ),
            BaseRel("nation"),
            on=[("c_nationkey", "n_nationkey")], foreign_key=True,
        ),
        BaseRel("region"),
        on=[("n_regionkey", "r_regionkey")], foreign_key=True,
    )
    revenue = col("l_extendedprice") * (1 - col("l_discount"))
    return Aggregate(
        join, list(CUBE_DIMENSIONS), [AggSpec("revenue", "sum", revenue)]
    )


def create_cube_view(db: Database, catalog: Catalog = None) -> MaterializedView:
    """Materialize the base cube on a TPCD database."""
    catalog = catalog or Catalog(db)
    return catalog.create_view(CUBE_VIEW_NAME, cube_definition())


def rollup_queries(func: str = "sum") -> List[Tuple[str, AggQuery, Tuple[str, ...]]]:
    """The 13 roll-up queries (``func``: "sum" for Fig 11, "median" for
    Fig 13); each entry is (name, measure query, group-by dims)."""
    return [
        (name, AggQuery(func, "revenue", name=f"{func}(revenue)|{name}"), dims)
        for name, dims in ROLLUP_GROUPINGS
    ]
