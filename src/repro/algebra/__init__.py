"""Relational algebra substrate: schemas, relations, expressions, evaluation.

This package implements the full operator set of paper §3.1 (σ, Π, ⋈, γ,
∪, ∩, −), plus the sampling operator η (§4.4) and the change-table Merge
(Ex. 1), with primary-key derivation (Def 2) and lineage (Def 1).  The
evaluator runs columnar (numpy-vectorized) fast paths over
:class:`ColumnarRelation` views by default, falling back to the
reference row-at-a-time loops operator by operator; see
:func:`set_columnar_enabled`.
"""

from repro.algebra.aggregates import get_aggregate
from repro.algebra.columnar import ColumnarRelation
from repro.algebra.compiler import (
    CompiledPlan,
    compile_plan,
    compiled_evaluate,
    plan_epoch,
    plan_key,
)
from repro.algebra.evaluator import (
    GROUP_COUNT,
    columnar_enabled,
    evaluate,
    set_columnar_enabled,
)
from repro.algebra.expressions import (
    AggSpec,
    Aggregate,
    BaseRel,
    Combiner,
    Difference,
    Expr,
    Hash,
    Intersect,
    Join,
    Merge,
    Output,
    Project,
    Select,
    Union,
    distinct,
)
from repro.algebra.keys import derive_key, derive_schema
from repro.algebra.predicates import (
    ALWAYS,
    And,
    Between,
    Col,
    Comparison,
    Const,
    Func,
    IsIn,
    Not,
    Or,
    Predicate,
    col,
    func,
    lit,
)
from repro.algebra.provenance import provenance_of, trace
from repro.algebra.relation import Relation
from repro.algebra.schema import Schema, as_schema

__all__ = [
    "AggSpec",
    "Aggregate",
    "ALWAYS",
    "And",
    "BaseRel",
    "Between",
    "Col",
    "ColumnarRelation",
    "Combiner",
    "Comparison",
    "Const",
    "Difference",
    "Expr",
    "Func",
    "GROUP_COUNT",
    "Hash",
    "Intersect",
    "IsIn",
    "Join",
    "Merge",
    "Not",
    "Or",
    "Output",
    "Predicate",
    "Project",
    "Relation",
    "Schema",
    "Select",
    "Union",
    "as_schema",
    "CompiledPlan",
    "col",
    "columnar_enabled",
    "compile_plan",
    "compiled_evaluate",
    "derive_key",
    "derive_schema",
    "distinct",
    "evaluate",
    "func",
    "get_aggregate",
    "lit",
    "plan_epoch",
    "plan_key",
    "provenance_of",
    "set_columnar_enabled",
    "trace",
]
