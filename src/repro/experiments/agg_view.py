"""Aggregate (data cube) view experiments — paper §7.6.1 (Figs 10–13).

The base cube materializes revenue by (custkey, nationkey, regionkey,
partkey) on TPCD (z = 1); the 13 roll-up queries of §12.6.3 aggregate
the cube over every dimension subset.

* Fig 10(a): maintenance time vs sampling ratio.
* Fig 10(b): SVC-10% speedup vs update size.
* Fig 11:    roll-up accuracy, median relative error (sum).
* Fig 12:    roll-up accuracy, **max** group error.
* Fig 13:    the same roll-ups with median instead of sum.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.evaluator import evaluate
from repro.core.cleaning import cleaning_expression
from repro.core.svc import StaleViewCleaner
from repro.db.catalog import Catalog
from repro.db.maintenance import choose_strategy
from repro.experiments.harness import ExperimentResult, timed
from repro.workloads.cube import (
    CUBE_SAMPLE_ATTRS,
    create_cube_view,
    rollup_queries,
)
from repro.workloads.tpcd import TPCDConfig, TPCDGenerator


def _build(scale: float, seed: int):
    gen = TPCDGenerator(TPCDConfig(scale=scale, z=1.0, seed=seed))
    db = gen.build()
    catalog = Catalog(db)
    view = create_cube_view(db, catalog)
    return db, gen, view


def _clean_time(view, ratio: float, seed: int) -> float:
    strategy = choose_strategy(view)
    expr, _ = cleaning_expression(view, ratio, seed, strategy,
                                  sample_attrs=CUBE_SAMPLE_ATTRS)
    evaluate(expr, view.database.leaves())  # warm
    return timed(lambda: evaluate(expr, view.database.leaves()), repeat=3)


def _ivm_time(view) -> float:
    strategy = choose_strategy(view)
    return timed(lambda: evaluate(strategy.expr, view.database.leaves()), repeat=3)


def fig10a_maintenance_vs_ratio(
    scale: float = 0.4,
    update_fraction: float = 0.1,
    ratios: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    seed: int = 42,
) -> ExperimentResult:
    """Fig 10(a): cube maintenance time vs sampling ratio."""
    db, gen, view = _build(scale, seed)
    gen.generate_updates(db, update_fraction)
    ivm = _ivm_time(view)
    result = ExperimentResult(
        "fig10a", "Agg View (cube): maintenance time vs sampling ratio",
        notes=f"IVM (full) = {ivm:.3f}s; paper: 26s at m=0.1 vs 186s full",
    )
    for m in ratios:
        result.add(sampling_ratio=m, svc_seconds=_clean_time(view, m, seed),
                   ivm_seconds=ivm)
    return result


def fig10b_speedup_vs_update_size(
    scale: float = 0.4,
    ratio: float = 0.1,
    update_fractions: Sequence[float] = (
        0.03, 0.05, 0.08, 0.10, 0.13, 0.15, 0.18, 0.20,
    ),
    seed: int = 42,
) -> ExperimentResult:
    """Fig 10(b): SVC-10% speedup approaches ~10x as updates grow."""
    result = ExperimentResult(
        "fig10b", "Agg View (cube): SVC 10% speedup vs update size",
        notes="paper: tends toward the ideal 10x speedup (8.7x at 20%)",
    )
    for frac in update_fractions:
        db, gen, view = _build(scale, seed)
        gen.generate_updates(db, frac)
        svc_t = _clean_time(view, ratio, seed)
        ivm_t = _ivm_time(view)
        result.add(update_fraction=frac, svc_seconds=svc_t, ivm_seconds=ivm_t,
                   speedup=ivm_t / svc_t if svc_t > 0 else float("inf"))
    return result


def _rollup_accuracy(
    metric: str, func: str, experiment_id: str, title: str, notes: str,
    scale: float, ratio: float, update_fraction: float, seed: int,
    n_queries: int = 20,
) -> ExperimentResult:
    """Roll-up accuracy via dimension-sliced scalar queries.

    The paper models group-by as part of the condition (§3.1), so each
    roll-up Qi is exercised as ``n_queries`` random range predicates
    over its dimensions aggregating the revenue measure; ``metric`` is
    "median" (Figs 11/13) or "max" (Fig 12) over the per-query errors.

    Accuracy experiments sample on the full cube key: hashing a key
    subset (as the timing experiments do for deeper push-down) would be
    cluster sampling, which §12.5 warns trades variance for speed.
    """
    import numpy as np

    from repro.workloads.queries import QueryGenerator, relative_error

    db, gen, view = _build(scale, seed)
    gen.generate_updates(db, update_fraction)
    svc = StaleViewCleaner(view, ratio=ratio, seed=seed)
    svc.refresh()
    fresh = view.fresh_data()
    result = ExperimentResult(experiment_id, title, notes=notes)
    reduce = np.median if metric == "median" else np.max
    for name, measure_query, dims in rollup_queries(func):
        if not dims:
            queries = [measure_query]
        else:
            # Median slices need support to be stable (§5.2.3's 1/√(kp)
            # law bites harder for order statistics).
            min_sel = 0.25 if func == "median" else 0.1
            qgen = QueryGenerator(view.require_data(), list(dims),
                                  ["revenue"], funcs=(func,), seed=seed,
                                  min_selectivity=min_sel)
            queries = qgen.batch(n_queries)
        errs = {"stale": [], "aqp": [], "corr": []}
        for q in queries:
            truth = q.evaluate(fresh)
            stale_val = svc.stale_answer(q)
            if func == "median":
                # Point estimates (the bootstrap only adds intervals and
                # would dominate the runtime of a 260-query sweep).
                aqp_val = q.evaluate(svc.clean_sample)
                corr_val = stale_val + (
                    q.evaluate(svc.clean_sample) - q.evaluate(svc.dirty_sample)
                )
            else:
                aqp_val = svc.query(q, method="aqp").value
                corr_val = svc.query(q, method="corr").value
            errs["stale"].append(relative_error(stale_val, truth))
            errs["aqp"].append(relative_error(aqp_val, truth))
            errs["corr"].append(relative_error(corr_val, truth))
        result.add(
            query=name,
            stale_pct=100 * float(reduce(errs["stale"])),
            svc_aqp_pct=100 * float(reduce(errs["aqp"])),
            svc_corr_pct=100 * float(reduce(errs["corr"])),
        )
    return result


def fig11_rollup_accuracy(
    scale: float = 0.4, ratio: float = 0.1, update_fraction: float = 0.1,
    seed: int = 42,
) -> ExperimentResult:
    """Fig 11: roll-up sum accuracy (median relative error %)."""
    return _rollup_accuracy(
        "median", "sum", "fig11",
        "Agg View: roll-up query accuracy (median relative error %)",
        "paper: SVC+CORR ≈12.9x better than stale, ≈3.6x better than AQP",
        scale, ratio, update_fraction, seed,
    )


def fig12_max_group_error(
    scale: float = 0.4, ratio: float = 0.1, update_fraction: float = 0.1,
    seed: int = 42,
) -> ExperimentResult:
    """Fig 12: max group error — stale spikes to ~80%, SVC stays low."""
    return _rollup_accuracy(
        "max", "sum", "fig12",
        "Agg View: roll-up query MAX group error (%)",
        "paper: stale max error reaches ~80% on some groups; SVC ≤ ~12%",
        scale, ratio, update_fraction, seed,
    )


def fig13_median_rollups(
    scale: float = 0.4, ratio: float = 0.1, update_fraction: float = 0.1,
    seed: int = 42,
) -> ExperimentResult:
    """Fig 13: the same roll-ups with median — less variance-sensitive."""
    return _rollup_accuracy(
        "median", "median", "fig13",
        "Agg View: 'median' roll-up accuracy (median relative error %)",
        "paper: both SVC variants are accurate; median is robust",
        scale, ratio, update_fraction, seed,
    )
