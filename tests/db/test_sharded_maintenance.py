"""Sharded maintenance must be row-for-row equal to the single-shard path.

Property tests randomize SPJ/SPJA views over the Log/Video running
example, mix insertions, deletions and updates (including all-delete
batches and shard counts that leave shards empty), and check that
``maintain`` under ``set_shard_count(n)`` produces exactly the relation
the reference single-shard path produces — for n ∈ {1, 2, 3, 7} and for
every executor backend.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    AggSpec,
    Aggregate,
    BaseRel,
    Join,
    Relation,
    Schema,
    Select,
    col,
)
from repro.core import AggQuery, StaleViewCleaner
from repro.db import Catalog, Database, classify, maintain
from repro.distributed import last_shard_report, plan_shards, set_shard_count
from repro.distributed.shard import get_shard_count
from repro.errors import MaintenanceError

SHARD_COUNTS = (1, 2, 3, 7)


@pytest.fixture(autouse=True)
def _reset_shard_count():
    """Never leak a shard configuration into other tests."""
    yield
    set_shard_count(1, max_workers=0)


def build_db(rows):
    db = Database()
    db.add_relation(Relation(Schema(["sessionId", "videoId"]), rows,
                             key=("sessionId",), name="Log"))
    db.add_relation(Relation(
        Schema(["videoId", "ownerId"]),
        [(v, v % 2) for v in range(8)], key=("videoId",), name="Video",
    ))
    return db


def reference_and_sharded(db_builder, view_builder, mutate, shards,
                          backend="serial"):
    """Rows from the single-shard reference vs. the sharded run."""
    results = []
    for count in (1, shards):
        db = db_builder()
        view = view_builder(db)
        mutate(db)
        set_shard_count(count, backend=backend)
        try:
            maintained = maintain(view)
        finally:
            set_shard_count(1)
        results.append(sorted(maintained.rows, key=repr))
    return results


log_rows = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 6)),
    min_size=0, max_size=30, unique_by=lambda r: r[0],
)
inserts = st.lists(
    st.tuples(st.integers(300, 500), st.integers(0, 7)),
    min_size=0, max_size=12, unique_by=lambda r: r[0],
)
delete_picks = st.lists(st.integers(0, 29), min_size=0, max_size=8,
                        unique=True)
shard_counts = st.sampled_from(SHARD_COUNTS)


def spja_view(db):
    join = Join(BaseRel("Log"), BaseRel("Video"),
                on=[("videoId", "videoId")], foreign_key=True)
    return Catalog(db).create_view(
        "v", Aggregate(join, ["videoId", "ownerId"],
                       [AggSpec("visits", "count"),
                        AggSpec("ssum", "sum", col("sessionId")),
                        AggSpec("smean", "avg", col("sessionId"))]),
    )


def spj_view(db):
    return Catalog(db).create_view(
        "v", Select(
            Join(BaseRel("Log"), BaseRel("Video"),
                 on=[("videoId", "videoId")], foreign_key=True),
            col("videoId") < 7,
        ),
    )


def make_mutation(new_rows, delete_idx):
    def mutate(db):
        base = db.relation("Log")
        if new_rows:
            db.insert("Log", new_rows)
        picks = [base.rows[i] for i in delete_idx if i < len(base.rows)]
        if picks:
            db.delete("Log", list(dict.fromkeys(picks)))
    return mutate


class TestShardedEquivalenceProperties:
    @given(log_rows, inserts, delete_picks, shard_counts)
    @settings(max_examples=25, deadline=None)
    def test_spja_sharded_equals_reference(self, rows, new_rows, delete_idx,
                                           shards):
        ref, sharded = reference_and_sharded(
            lambda: build_db(rows), spja_view,
            make_mutation(new_rows, delete_idx), shards,
        )
        assert ref == sharded

    @given(log_rows, inserts, delete_picks, shard_counts)
    @settings(max_examples=25, deadline=None)
    def test_spj_sharded_equals_reference(self, rows, new_rows, delete_idx,
                                          shards):
        ref, sharded = reference_and_sharded(
            lambda: build_db(rows), spj_view,
            make_mutation(new_rows, delete_idx), shards,
        )
        assert ref == sharded

    @given(log_rows, delete_picks, shard_counts)
    @settings(max_examples=15, deadline=None)
    def test_all_delete_delta(self, rows, delete_idx, shards):
        """Deltas of pure deletions (including emptied groups)."""
        ref, sharded = reference_and_sharded(
            lambda: build_db(rows), spja_view,
            make_mutation([], delete_idx or [0]), shards,
        )
        assert ref == sharded

    @given(log_rows, shard_counts)
    @settings(max_examples=10, deadline=None)
    def test_empty_delta_identity(self, rows, shards):
        """No pending changes: sharded maintenance is still the identity."""
        ref, sharded = reference_and_sharded(
            lambda: build_db(rows), spja_view, lambda db: None, shards,
        )
        assert ref == sharded

    @given(log_rows, inserts, shard_counts)
    @settings(max_examples=15, deadline=None)
    def test_minmax_with_deletions_recompute_path(self, rows, new_rows,
                                                  shards):
        """min/max + deletions forces recomputation; sharding must agree."""
        def view_builder(db):
            join = Join(BaseRel("Log"), BaseRel("Video"),
                        on=[("videoId", "videoId")], foreign_key=True)
            return Catalog(db).create_view(
                "v", Aggregate(join, ["ownerId"],
                               [AggSpec("smin", "min", col("sessionId")),
                                AggSpec("smax", "max", col("sessionId"))]),
            )

        def mutate(db):
            base = db.relation("Log")
            if new_rows:
                db.insert("Log", new_rows)
            if base.rows:
                db.delete("Log", [base.rows[0]])

        ref, sharded = reference_and_sharded(
            lambda: build_db(rows), view_builder, mutate, shards,
        )
        assert ref == sharded


class TestShardPlanner:
    def test_visit_view_copartitions_join(self, visit_view):
        plan = plan_shards(visit_view)
        assert plan.shardable
        assert plan.attrs == ("videoId",)
        assert plan.partitioned == {"Log": ("videoId",),
                                    "Video": ("videoId",)}
        # Delta leaves and the stale view follow automatically.
        parts = plan.leaf_partitions()
        assert parts["Log__ins"] == ("videoId",)
        assert parts["Log__del"] == ("videoId",)
        assert parts["visitView"] == ("videoId",)

    def test_global_aggregate_not_shardable(self, log_video_db):
        view = Catalog(log_video_db).create_view(
            "tot", Aggregate(BaseRel("Log"), [],
                             [AggSpec("n", "count")]),
        )
        plan = plan_shards(view)
        assert not plan.shardable
        assert "group key" in plan.reason

    def test_unshardable_view_falls_back_to_reference(self, log_video_db):
        view = Catalog(log_video_db).create_view(
            "tot", Aggregate(BaseRel("Log"), [],
                             [AggSpec("n", "count")]),
        )
        log_video_db.insert("Log", [(900, 1)])
        fresh = view.fresh_data()
        set_shard_count(4)
        maintained = maintain(view)
        assert sorted(maintained.rows) == sorted(fresh.rows)

    def test_set_shard_count_validates(self):
        with pytest.raises(MaintenanceError):
            set_shard_count(0)
        with pytest.raises(MaintenanceError):
            set_shard_count(2, backend="gpu")
        assert get_shard_count() == 1

    def test_set_shard_count_returns_previous(self):
        assert set_shard_count(3) == 1
        assert set_shard_count(1) == 3


class TestShardedExecutionModes:
    def _stale_view(self):
        db = build_db([(i, i % 7) for i in range(120)])
        view = spja_view(db)
        db.insert("Log", [(1000 + i, i % 8) for i in range(40)])
        db.delete("Log", [db.relation("Log").rows[i] for i in range(5)])
        return db, view

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_agree(self, backend):
        db, view = self._stale_view()
        fresh = view.fresh_data()
        set_shard_count(4, backend=backend, max_workers=2)
        maintained = maintain(view)
        assert classify(maintained, fresh).is_fresh()
        report = last_shard_report()
        assert report is not None
        assert report.count == 4
        assert report.total_rows == len(maintained)

    def test_skipped_shards_reported(self):
        db = build_db([(i, i % 7) for i in range(80)])
        view = spja_view(db)
        # Touch exactly one group: most shards must be skipped, and the
        # skipped shards' rows come straight from the stale partition.
        db.insert("Log", [(2000 + i, 3) for i in range(6)])
        fresh = view.fresh_data()
        set_shard_count(7, backend="serial")
        maintained = maintain(view)
        assert classify(maintained, fresh).is_fresh()
        report = last_shard_report()
        assert report.skipped_count >= 5

    def test_catalog_maintain_all_shards_override(self):
        db, view = self._stale_view()
        catalog = Catalog(db)
        catalog._views[view.name] = view  # adopt the existing view
        fresh = view.fresh_data()
        catalog.maintain_all(shards=3)
        assert get_shard_count() == 1  # restored
        assert classify(view.require_data(), fresh).is_fresh()
        assert not db.is_stale()


class TestShardedCleaning:
    @pytest.mark.parametrize("shards", [2, 3, 7])
    def test_sharded_sample_cleaning_equals_reference(self, shards):
        db = build_db([(i, i % 7) for i in range(150)])
        view = spja_view(db)
        db.insert("Log", [(3000 + i, i % 8) for i in range(50)])
        db.delete("Log", [db.relation("Log").rows[i] for i in range(8)])

        svc_ref = StaleViewCleaner(view, ratio=0.4, seed=5)
        set_shard_count(1)
        ref_rows = sorted(svc_ref.refresh().rows, key=repr)

        svc_sharded = StaleViewCleaner(view, ratio=0.4, seed=5)
        set_shard_count(shards, backend="serial")
        sharded_rows = sorted(svc_sharded.refresh().rows, key=repr)
        set_shard_count(1)

        assert ref_rows == sharded_rows
        # The cleaned sample still corresponds to the dirty one.
        fresh = view.fresh_data()
        assert svc_sharded.sample_view.check_correspondence(fresh).holds()

    def test_process_backend_cleaning_tracks_hash_family(self):
        """Long-lived workers must use the parent's *current* hash family.

        The family is shipped with every task (workers may have been
        forked under a different one), so sharded cleaning under the
        linear family equals the single-shard linear reference.
        """
        from repro.stats.hashing import set_hash_family

        db = build_db([(i, i % 7) for i in range(150)])
        view = spja_view(db)
        db.insert("Log", [(5000 + i, i % 8) for i in range(40)])
        set_hash_family("linear")
        try:
            set_shard_count(1)
            ref = StaleViewCleaner(view, ratio=0.4, seed=3)
            ref_rows = sorted(ref.refresh().rows, key=repr)

            set_shard_count(4, backend="process", max_workers=2)
            sharded = StaleViewCleaner(view, ratio=0.4, seed=3)
            sharded_rows = sorted(sharded.refresh().rows, key=repr)
            assert sharded_rows == ref_rows
        finally:
            set_hash_family("sha1")
            set_shard_count(1)

    def test_sharded_estimates_match_reference(self):
        db = build_db([(i, i % 7) for i in range(150)])
        view = spja_view(db)
        db.insert("Log", [(4000 + i, i % 8) for i in range(60)])
        query = AggQuery("sum", "visits")

        set_shard_count(1)
        svc_ref = StaleViewCleaner(view, ratio=0.5, seed=9)
        svc_ref.refresh()
        ref = svc_ref.query(query, method="corr")

        set_shard_count(3, backend="serial")
        svc_sharded = StaleViewCleaner(view, ratio=0.5, seed=9)
        svc_sharded.refresh()
        sharded = svc_sharded.query(query, method="corr")
        set_shard_count(1)

        assert sharded.value == pytest.approx(ref.value)
        assert sharded.se == pytest.approx(ref.se)
