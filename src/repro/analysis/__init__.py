"""repro.analysis — AST-based invariant linter for the engine's own
contracts.

The engine's correctness rests on a handful of cross-cutting invariants
that no unit test can pin down once and for all: every module-level
memo must be drained by the plan-epoch / hash-family invalidation
paths, every shared-memory segment must flow through the transport's
ownership protocol, every engine toggle used inside library code must
be restored, every swallowed exception in a failure domain must leave
``FailureReason`` telemetry, and every columnar fast path must sit
behind its row-path fallback guard.  This package encodes those
contracts as static-analysis rules (stdlib ``ast`` only) so new code
cannot silently regress them:

* **REP001** unregistered module-level cache (``repro.caches``)
* **REP002** raw shared-memory lifecycle outside the transport/probe
* **REP003** unrestored ``set_*`` engine toggle
* **REP004** silent ``except Exception`` in a failure domain
* **REP005** columnar fast path outside the fallback-guard dispatch
* **REP006** unlocked worker-reachable module-state mutation

Run ``python -m repro.analysis`` (see ``docs/analysis.md`` for the rule
catalog, the ``# repro: ignore[RULE] -- reason`` suppression syntax,
and the baseline workflow).
"""

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.engine import AnalysisResult, run_analysis
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    Checker,
    FileChecker,
    all_checkers,
    register_checker,
)

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineError",
    "Checker",
    "FileChecker",
    "Finding",
    "all_checkers",
    "register_checker",
    "run_analysis",
]
