"""A tuner decision that flips engine or shard count must invalidate
every epoch-keyed cache — and a decision that flips nothing must not.

Three caches key on the global plan epoch (or on a fingerprint
containing it): the per-view compiled-plan cache
(``CompiledPlan.valid_for``), the per-view ``plan_shards`` memo, and
the minibatch calibration fingerprint (``ErrorModel.is_current``).
When the tuner moves ``set_shard_count`` / ``set_columnar_enabled``
mid-run, all three must observe the change; when it re-asserts the
incumbent configuration (the common case, thanks to hysteresis), none
may churn — a gratuitous epoch bump would recompile every plan and
re-partition every shard environment each round.
"""

from repro.algebra.compiler import plan_epoch
from repro.algebra.evaluator import columnar_enabled
from repro.db import Catalog, Database, maintain
from repro.db.maintenance import compiled_strategy
from repro.algebra import AggSpec, Aggregate, BaseRel, Join, Relation, Schema
from repro.distributed.minibatch import engine_fingerprint
from repro.distributed.shard import plan_shards
from repro.tuning import CandidateConfig, HardwareProbe, Tuner

PROBE = HardwareProbe(cores=2)

SINGLE_COL = CandidateConfig(1, "serial", "pickle", "columnar")
SINGLE_ROW = CandidateConfig(1, "serial", "pickle", "row")
SHARDED_COL = CandidateConfig(2, "thread", "pickle", "columnar")


def build_view():
    db = Database()
    db.add_relation(Relation(Schema(["sessionId", "videoId"]),
                             [(s, s % 10) for s in range(300)],
                             key=("sessionId",), name="Log"))
    db.add_relation(Relation(Schema(["videoId", "ownerId"]),
                             [(v, v % 3) for v in range(10)],
                             key=("videoId",), name="Video"))
    view = Catalog(db).create_view(
        "v",
        Aggregate(Join(BaseRel("Log"), BaseRel("Video"),
                       on=[("videoId", "videoId")], foreign_key=True),
                  ["videoId", "ownerId"], [AggSpec("visits", "count")]),
    )
    return db, view


class TestEpochInvalidation:
    def setup_method(self):
        self.tuner = Tuner(probe=PROBE)
        self.tuner.apply_config(SINGLE_COL)

    def test_shard_count_flip_bumps_the_epoch(self):
        before = plan_epoch()
        self.tuner.apply_config(SHARDED_COL)
        assert plan_epoch() > before
        self.tuner.apply_config(SINGLE_COL)
        assert plan_epoch() > before + 1

    def test_engine_flip_bumps_the_epoch(self):
        before = plan_epoch()
        self.tuner.apply_config(SINGLE_ROW)
        assert not columnar_enabled()
        assert plan_epoch() > before

    def test_noop_reassertion_does_not_bump(self):
        self.tuner.apply_config(SHARDED_COL)
        epoch = plan_epoch()
        self.tuner.apply_config(SHARDED_COL)
        assert plan_epoch() == epoch

    def test_compiled_plan_invalidated_by_tuner_flip(self):
        db, view = build_view()
        db.insert("Log", [(1000 + i, i % 10) for i in range(50)])
        _, plan = compiled_strategy(view)
        assert plan.valid_for(db.leaves())
        self.tuner.apply_config(SHARDED_COL)
        assert not plan.valid_for(db.leaves())
        # The next maintain recompiles and still produces exact rows.
        maintained = sorted(maintain(view).rows, key=repr)
        db.apply_deltas()
        assert maintained == sorted(view.materialize().rows, key=repr)

    def test_plan_shards_memo_refreshes_on_tuner_flip(self):
        _, view = build_view()
        first = plan_shards(view)
        assert plan_shards(view) is first  # memo hit while nothing moved
        self.tuner.apply_config(SHARDED_COL)
        second = plan_shards(view)
        assert second is not first  # epoch change invalidated the memo
        assert second.partitioned == first.partitioned  # same decision

    def test_engine_fingerprint_tracks_tuner_decisions(self):
        base = engine_fingerprint()
        self.tuner.apply_config(SHARDED_COL)
        sharded = engine_fingerprint()
        assert sharded != base
        self.tuner.apply_config(SINGLE_ROW)
        row = engine_fingerprint()
        assert row != sharded != base
        # Re-asserting the current config leaves the fingerprint alone.
        self.tuner.apply_config(SINGLE_ROW)
        assert engine_fingerprint() == row

    def test_calibration_invalidated_by_tuner_flip(self):
        from repro.distributed.minibatch import ErrorModel

        model = ErrorModel(stale_points=[(0.0, 0.0), (1.0, 1.0)],
                           estimation_points=[(0.0, 1.0), (1.0, 0.0)],
                           fingerprint=engine_fingerprint())
        assert model.is_current()
        self.tuner.apply_config(SHARDED_COL)
        assert not model.is_current()
